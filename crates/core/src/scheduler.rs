//! Background maintenance: an engine-wide worker pool executing flush and
//! merge jobs for every registered dataset.
//!
//! Luo & Carey design the maintenance strategies so that writers proceed
//! *concurrently* with flush/merge rebuilds (Section 5.3 — the `BuildLink`
//! machinery, bitmap redirection, and the timestamp protocol). The
//! [`MaintenanceRuntime`] exploits that: writers only *enqueue* work when
//! the memory budget trips, and a bounded pool of worker threads seals
//! memory components, builds disk components, and runs policy-driven merges
//! while ingestion continues. Unlike a per-dataset pool, one runtime serves
//! *all* datasets registered with it — a node hosting hundreds of datasets
//! runs a handful of maintenance threads, not hundreds.
//!
//! Contracts:
//!
//! * **Registration** — datasets join on
//!   [`Dataset::open_with_runtime`](crate::Dataset::open_with_runtime) (or
//!   get a private fixed-size runtime from
//!   [`MaintenanceMode::Background`](crate::MaintenanceMode)) and leave when
//!   dropped; deregistration discards the dataset's queued jobs.
//! * **Priorities** — the queue is a priority queue, not FIFO: flushes run
//!   before merges (they release writer memory), and merges run
//!   smallest-estimated-input-first so cheap consolidation is never stuck
//!   behind a giant merge.
//! * **Dedup** — at most one flush job per dataset is queued at a time, and
//!   merge jobs are keyed by `(dataset, target, MergeRange)`; re-enqueueing
//!   queued work is a no-op.
//! * **Adaptive scaling** — [`EngineConfig::min_workers`] threads are
//!   permanent; when the queue outgrows the live workers, transient workers
//!   spawn up to [`EngineConfig::max_workers`] (never beyond) and retire
//!   once the queue drains.
//! * **I/O throttling** — when [`EngineConfig::io_read_bytes_per_sec`] is
//!   set, workers install the runtime's token bucket
//!   ([`lsm_storage::IoThrottle`]) for the duration of each job, so rebuild
//!   scans cannot monopolize device read bandwidth.
//! * **Backpressure** — writers never block on the queue itself; they stall
//!   only when active + flushing memory exceeds the hard ceiling
//!   ([`DatasetConfig::memory_ceiling`](crate::DatasetConfig), default 2×
//!   the budget), preserving the paper's shared-memory-budget semantics.
//! * **Error propagation** — a job error (or panic) poisons its dataset;
//!   the next write fails with the stored cause instead of the process
//!   aborting. Other datasets on the runtime are unaffected.
//! * **Graceful shutdown** — dropping a dataset discards its queued jobs
//!   and dropping the runtime's last handle drains in-flight rebuilds
//!   before the workers exit.

use crate::config::EngineConfig;
use crate::dataset::{Dataset, MergePlan};
use lsm_common::Result;
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a stalled writer sleeps between ceiling re-checks. The flush
/// worker notifies the stall condvar on completion, so this is only a
/// safety net against lost wakeups.
const STALL_RECHECK: Duration = Duration::from_millis(20);

/// A unit of background maintenance work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Job {
    /// Seal and flush all of the dataset's memory components.
    Flush,
    /// Run the merge planned for the dataset (the embedded plan is the
    /// dedup key; execution re-plans under the merge lock, so a stale range
    /// is never applied).
    Merge(MergePlan),
}

/// Job class half of the priority key: flushes (0) always pop before
/// merges (1) — a flush is what releases stalled writer memory.
const CLASS_FLUSH: u8 = 0;
const CLASS_MERGE: u8 = 1;

/// One queued job with its priority key. Ordered by `(class, est_bytes,
/// seq)` ascending: flushes first, then merges smallest-estimated-first,
/// FIFO within ties.
#[derive(Debug)]
struct QueuedJob {
    class: u8,
    est_bytes: u64,
    seq: u64,
    dataset: u64,
    job: Job,
}

impl QueuedJob {
    fn key(&self) -> (u8, u64, u64) {
        (self.class, self.est_bytes, self.seq)
    }
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Per-dataset bookkeeping inside the runtime.
#[derive(Debug)]
struct DatasetEntry {
    ds: Weak<Dataset>,
    /// Dedup: one flush job per dataset.
    flush_queued: bool,
    /// Dedup: merges keyed by `(target, range)`.
    merges_queued: HashSet<MergePlan>,
    /// This dataset's jobs currently in the queue.
    queued: usize,
    /// This dataset's jobs popped but not yet finished.
    in_flight: usize,
}

#[derive(Debug, Default)]
struct RuntimeState {
    queue: BinaryHeap<Reverse<QueuedJob>>,
    next_seq: u64,
    next_dataset: u64,
    datasets: HashMap<u64, DatasetEntry>,
    /// Live worker threads (permanent + transient).
    cur_workers: usize,
    /// High-water mark of `cur_workers` — asserted never to exceed
    /// `max_workers`.
    peak_workers: usize,
    total_in_flight: usize,
    shutdown: bool,
}

#[derive(Debug, Default)]
struct RuntimeCounters {
    jobs_executed: AtomicU64,
    flush_jobs: AtomicU64,
    merge_jobs: AtomicU64,
    workers_spawned: AtomicU64,
    workers_retired: AtomicU64,
}

/// State shared between the runtime handle, its workers, registered
/// datasets, and stalled writers.
#[derive(Debug)]
pub(crate) struct RuntimeShared {
    cfg: EngineConfig,
    state: Mutex<RuntimeState>,
    /// Permanent workers wait here for jobs.
    work_cv: Condvar,
    /// Per-dataset and whole-runtime quiesce wait here for drains.
    idle_cv: Condvar,
    /// Backpressured writers wait here for a flush to free memory.
    stall_lock: Mutex<()>,
    stall_cv: Condvar,
    /// Read-bandwidth token bucket installed by workers for each job.
    throttle: Option<Arc<lsm_storage::IoThrottle>>,
    /// Transient (adaptively spawned) worker handles, joined on shutdown.
    extra: Mutex<Vec<JoinHandle<()>>>,
    counters: RuntimeCounters,
}

impl RuntimeShared {
    fn new(cfg: EngineConfig) -> Self {
        let throttle = cfg
            .io_read_bytes_per_sec
            .map(|rate| lsm_storage::IoThrottle::new(rate, cfg.effective_burst_bytes().unwrap()));
        RuntimeShared {
            cfg,
            state: Mutex::new(RuntimeState::default()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            stall_lock: Mutex::new(()),
            stall_cv: Condvar::new(),
            throttle,
            extra: Mutex::new(Vec::new()),
            counters: RuntimeCounters::default(),
        }
    }

    fn register(&self, ds: &Arc<Dataset>) -> u64 {
        let mut s = self.state.lock();
        let id = s.next_dataset;
        s.next_dataset += 1;
        s.datasets.insert(
            id,
            DatasetEntry {
                ds: Arc::downgrade(ds),
                flush_queued: false,
                merges_queued: HashSet::new(),
                queued: 0,
                in_flight: 0,
            },
        );
        id
    }

    /// Removes a dataset and discards its queued jobs (a dropped dataset
    /// cannot execute them anyway: workers hold only weak references).
    fn deregister(&self, id: u64) {
        let mut s = self.state.lock();
        let Some(entry) = s.datasets.remove(&id) else {
            return;
        };
        if entry.queued > 0 {
            let old = std::mem::take(&mut s.queue);
            s.queue = old
                .into_iter()
                .filter(|Reverse(q)| q.dataset != id)
                .collect();
        }
        drop(s);
        self.idle_cv.notify_all();
    }

    /// Enqueues a flush job for `id` unless one is already queued. Returns
    /// `true` if a job was added.
    fn schedule_flush(self: &Arc<Self>, id: u64) -> bool {
        let mut s = self.state.lock();
        if s.shutdown {
            return false;
        }
        let Some(entry) = s.datasets.get_mut(&id) else {
            return false;
        };
        if entry.flush_queued {
            return false;
        }
        entry.flush_queued = true;
        entry.queued += 1;
        let spawn = self.push_locked(&mut s, id, CLASS_FLUSH, 0, Job::Flush);
        drop(s);
        self.work_cv.notify_one();
        if spawn {
            self.spawn_transient();
        }
        true
    }

    /// Enqueues a merge job for `id` unless an identical `(target, range)`
    /// job is already queued. `est_bytes` (estimated merge input size)
    /// orders merges smallest-first. Returns `true` if a job was added.
    fn schedule_merge(self: &Arc<Self>, id: u64, plan: MergePlan, est_bytes: u64) -> bool {
        let mut s = self.state.lock();
        if s.shutdown {
            return false;
        }
        let Some(entry) = s.datasets.get_mut(&id) else {
            return false;
        };
        if !entry.merges_queued.insert(plan) {
            return false;
        }
        entry.queued += 1;
        let spawn = self.push_locked(&mut s, id, CLASS_MERGE, est_bytes, Job::Merge(plan));
        drop(s);
        self.work_cv.notify_one();
        if spawn {
            self.spawn_transient();
        }
        true
    }

    /// Queues the job and decides (under the lock) whether a transient
    /// worker slot should be claimed: the queue outgrew the live workers
    /// and the hard `max_workers` cap is not reached. Requires the
    /// permanent pool to be live (`cur_workers >= min_workers`) — a bare
    /// `RuntimeShared` used for queue unit tests never spawns. Returns
    /// `true` when a slot was reserved; the caller spawns the thread after
    /// releasing the lock ([`RuntimeShared::spawn_transient`]).
    fn push_locked(
        self: &Arc<Self>,
        s: &mut RuntimeState,
        id: u64,
        class: u8,
        est: u64,
        job: Job,
    ) -> bool {
        let seq = s.next_seq;
        s.next_seq += 1;
        s.queue.push(Reverse(QueuedJob {
            class,
            est_bytes: est,
            seq,
            dataset: id,
            job,
        }));
        // Demand counts queued AND in-flight jobs: a lone flush queued
        // behind a long merge must still get a fresh worker, or a stalled
        // writer waits out the whole merge with capacity idle.
        if s.shutdown
            || s.cur_workers < self.cfg.min_workers
            || s.queue.len() + s.total_in_flight <= s.cur_workers
            || s.cur_workers >= self.cfg.max_workers
        {
            return false;
        }
        s.cur_workers += 1;
        s.peak_workers = s.peak_workers.max(s.cur_workers);
        true
    }

    /// Spawns the transient worker whose slot `push_locked` reserved. Runs
    /// outside the state lock (thread creation is a syscall every enqueuer
    /// would otherwise contend on). Spawn failure — e.g. a process thread
    /// limit — releases the slot and carries on: the permanent workers
    /// still drain the queue, so degraded throughput, not a panicked
    /// writer.
    fn spawn_transient(self: &Arc<Self>) {
        // Defensive: an enqueuer always belongs to a registered dataset
        // whose handle keeps the runtime alive, so shutdown cannot begin
        // between the slot reservation and here — but a released slot is
        // cheaper than reasoning about that forever.
        {
            let mut s = self.state.lock();
            if s.shutdown {
                s.cur_workers -= 1;
                return;
            }
        }
        let n = self
            .counters
            .workers_spawned
            .fetch_add(1, Ordering::Relaxed);
        let shared = self.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("lsm-maint-x{n}"))
            .spawn(move || transient_loop(&shared));
        match spawned {
            Ok(handle) => {
                let mut extra = self.extra.lock();
                // Sweep handles of already-retired transients so the list
                // stays bounded by the live worker count, not by the
                // spawn count over the runtime's lifetime.
                extra.retain(|h| !h.is_finished());
                extra.push(handle);
            }
            Err(_) => {
                self.counters
                    .workers_spawned
                    .fetch_sub(1, Ordering::Relaxed);
                self.state.lock().cur_workers -= 1;
            }
        }
    }

    fn try_pop_locked(s: &mut RuntimeState) -> Option<(u64, Job, Weak<Dataset>)> {
        while let Some(Reverse(q)) = s.queue.pop() {
            // The entry can be gone if the dataset deregistered after this
            // job was queued (deregistration filters the queue, but a
            // concurrent pop may already hold the job).
            let Some(entry) = s.datasets.get_mut(&q.dataset) else {
                continue;
            };
            match &q.job {
                Job::Flush => entry.flush_queued = false,
                Job::Merge(plan) => {
                    // Clear the dedup key immediately: work arriving while
                    // this job runs must be re-queueable (the job mutexes in
                    // `Dataset` serialize actual execution).
                    entry.merges_queued.remove(plan);
                }
            }
            entry.queued -= 1;
            entry.in_flight += 1;
            s.total_in_flight += 1;
            let weak = entry.ds.clone();
            return Some((q.dataset, q.job, weak));
        }
        None
    }

    fn finish_job(&self, id: u64) {
        let mut s = self.state.lock();
        s.total_in_flight -= 1;
        if let Some(entry) = s.datasets.get_mut(&id) {
            entry.in_flight -= 1;
        }
        drop(s);
        self.idle_cv.notify_all();
    }

    /// Jobs currently queued for dataset `id`.
    fn queue_depth_for(&self, id: u64) -> usize {
        self.state.lock().datasets.get(&id).map_or(0, |e| e.queued)
    }

    /// Blocks until dataset `id` has no queued and no in-flight jobs.
    /// Other datasets' jobs are not waited for (beyond those ahead in the
    /// queue finishing naturally).
    fn wait_idle_for(&self, id: u64) {
        let mut s = self.state.lock();
        loop {
            match s.datasets.get(&id) {
                None => return,
                Some(e) if e.queued == 0 && e.in_flight == 0 => return,
                Some(_) => self.idle_cv.wait(&mut s),
            }
        }
    }

    /// Blocks until the whole queue is empty and no job is in flight.
    fn wait_idle_all(&self) {
        let mut s = self.state.lock();
        while !(s.queue.is_empty() && s.total_in_flight == 0) {
            self.idle_cv.wait(&mut s);
        }
    }

    /// Blocks until `done()` holds, waking on flush completions (plus a
    /// periodic recheck so a dead worker cannot strand the writer).
    fn stall_until(&self, done: impl Fn() -> bool) {
        let mut g = self.stall_lock.lock();
        while !done() {
            self.stall_cv.wait_for(&mut g, STALL_RECHECK);
        }
    }

    /// Wakes every stalled writer (after a flush completed or a dataset
    /// was poisoned). Taking `stall_lock` first means a writer between its
    /// predicate check and its wait cannot miss the signal — the 20ms
    /// recheck in `stall_until` is a true safety net, not the common path.
    fn notify_stalled(&self) {
        let _guard = self.stall_lock.lock();
        self.stall_cv.notify_all();
    }

    /// Signals shutdown and joins all workers, draining queued jobs first.
    /// Safe to call from a worker thread (its own handle is detached
    /// instead of joined — this happens when a job holds the last strong
    /// reference to a dataset holding the last runtime handle).
    fn shutdown_and_join(&self, permanent: Vec<JoinHandle<()>>) {
        {
            let mut s = self.state.lock();
            s.shutdown = true;
        }
        self.work_cv.notify_all();
        self.notify_stalled();
        let extra: Vec<JoinHandle<()>> = self.extra.lock().drain(..).collect();
        let me = std::thread::current().id();
        for handle in permanent.into_iter().chain(extra) {
            if handle.thread().id() == me {
                continue; // drop = detach; the thread is about to exit
            }
            let _ = handle.join();
        }
    }
}

/// An engine-wide maintenance worker pool shared by every dataset
/// registered with it.
///
/// Create one with [`MaintenanceRuntime::start`] and pass it to
/// [`Dataset::open_with_runtime`](crate::Dataset::open_with_runtime); each
/// dataset keeps a handle, so the runtime outlives all of its datasets and
/// shuts down (draining in-flight rebuilds) when the last handle drops.
/// Datasets opened with
/// [`MaintenanceMode::Background`](crate::MaintenanceMode) get a private
/// fixed-size runtime automatically.
#[derive(Debug)]
pub struct MaintenanceRuntime {
    shared: Arc<RuntimeShared>,
    permanent: Mutex<Vec<JoinHandle<()>>>,
}

impl MaintenanceRuntime {
    /// Validates `cfg`, spawns the permanent workers, and returns the
    /// runtime handle.
    pub fn start(cfg: EngineConfig) -> Result<Arc<Self>> {
        cfg.validate()?;
        let shared = Arc::new(RuntimeShared::new(cfg));
        {
            let mut s = shared.state.lock();
            s.cur_workers = shared.cfg.min_workers;
            s.peak_workers = shared.cfg.min_workers;
        }
        let handles = (0..shared.cfg.min_workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("lsm-maint-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn maintenance worker")
            })
            .collect();
        Ok(Arc::new(MaintenanceRuntime {
            shared,
            permanent: Mutex::new(handles),
        }))
    }

    /// The runtime configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.shared.cfg
    }

    /// Blocks until every registered dataset's queue is drained and all
    /// in-flight jobs have completed.
    pub fn quiesce(&self) {
        self.shared.wait_idle_all();
    }

    /// Point-in-time runtime statistics.
    pub fn stats(&self) -> RuntimeStatsSnapshot {
        let s = self.shared.state.lock();
        let c = &self.shared.counters;
        RuntimeStatsSnapshot {
            datasets: s.datasets.len(),
            queue_depth: s.queue.len(),
            in_flight: s.total_in_flight,
            cur_workers: s.cur_workers,
            peak_workers: s.peak_workers,
            min_workers: self.shared.cfg.min_workers,
            max_workers: self.shared.cfg.max_workers,
            jobs_executed: c.jobs_executed.load(Ordering::Relaxed),
            flush_jobs: c.flush_jobs.load(Ordering::Relaxed),
            merge_jobs: c.merge_jobs.load(Ordering::Relaxed),
            workers_spawned: c.workers_spawned.load(Ordering::Relaxed),
            workers_retired: c.workers_retired.load(Ordering::Relaxed),
            throttle_wait_ns: self.shared.throttle.as_ref().map_or(0, |t| t.waited_ns()),
            throttled_bytes: self
                .shared
                .throttle
                .as_ref()
                .map_or(0, |t| t.throttled_bytes()),
        }
    }

    pub(crate) fn register(&self, ds: &Arc<Dataset>) -> u64 {
        self.shared.register(ds)
    }

    pub(crate) fn deregister(&self, id: u64) {
        self.shared.deregister(id);
    }
}

impl Drop for MaintenanceRuntime {
    /// Graceful shutdown: signal, drain in-flight rebuilds, join. Runs when
    /// the last handle drops — possibly on a worker thread (a job holds a
    /// temporary strong reference to the last dataset, which holds the last
    /// runtime handle), which `shutdown_and_join` handles by detaching
    /// itself.
    fn drop(&mut self) {
        let handles = std::mem::take(&mut *self.permanent.get_mut());
        self.shared.shutdown_and_join(handles);
    }
}

/// Point-in-time statistics of a [`MaintenanceRuntime`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct RuntimeStatsSnapshot {
    pub datasets: usize,
    pub queue_depth: usize,
    pub in_flight: usize,
    pub cur_workers: usize,
    /// High-water mark of concurrent maintenance threads — never exceeds
    /// `max_workers`.
    pub peak_workers: usize,
    pub min_workers: usize,
    pub max_workers: usize,
    pub jobs_executed: u64,
    pub flush_jobs: u64,
    pub merge_jobs: u64,
    pub workers_spawned: u64,
    pub workers_retired: u64,
    /// Wall-clock nanoseconds jobs spent waiting in the read throttle.
    pub throttle_wait_ns: u64,
    /// Bytes accounted against the read throttle.
    pub throttled_bytes: u64,
}

/// A dataset's registration on a runtime: the shared state plus the
/// dataset's id. Held in the dataset (keeping the runtime alive) and used
/// by the hot write path, so every method is lock-light.
#[derive(Debug, Clone)]
pub(crate) struct RuntimeHandle {
    runtime: Arc<MaintenanceRuntime>,
    id: u64,
}

impl RuntimeHandle {
    pub(crate) fn new(runtime: Arc<MaintenanceRuntime>, id: u64) -> Self {
        RuntimeHandle { runtime, id }
    }

    pub(crate) fn runtime(&self) -> &Arc<MaintenanceRuntime> {
        &self.runtime
    }

    pub(crate) fn schedule_flush(&self) -> bool {
        self.runtime.shared.schedule_flush(self.id)
    }

    pub(crate) fn schedule_merge(&self, plan: MergePlan, est_bytes: u64) -> bool {
        self.runtime.shared.schedule_merge(self.id, plan, est_bytes)
    }

    /// Jobs queued for this dataset (not the whole runtime).
    pub(crate) fn queue_depth(&self) -> usize {
        self.runtime.shared.queue_depth_for(self.id)
    }

    /// Blocks until this dataset's jobs (queued + in-flight) are drained.
    pub(crate) fn wait_idle(&self) {
        self.runtime.shared.wait_idle_for(self.id);
    }

    pub(crate) fn stall_until(&self, done: impl Fn() -> bool) {
        self.runtime.shared.stall_until(done);
    }

    pub(crate) fn notify_stalled(&self) {
        self.runtime.shared.notify_stalled();
    }

    pub(crate) fn deregister(&self) {
        self.runtime.deregister(self.id);
    }
}

/// Permanent worker: blocks on the queue until shutdown, then drains.
fn worker_loop(shared: &Arc<RuntimeShared>) {
    loop {
        let popped = {
            let mut s = shared.state.lock();
            loop {
                if let Some(p) = RuntimeShared::try_pop_locked(&mut s) {
                    break Some(p);
                }
                if s.shutdown {
                    break None;
                }
                shared.work_cv.wait(&mut s);
            }
        };
        let Some((id, job, weak)) = popped else {
            return;
        };
        execute_job(shared, id, job, &weak);
    }
}

/// Transient worker: executes while the queue is non-empty, then retires.
fn transient_loop(shared: &Arc<RuntimeShared>) {
    loop {
        let popped = {
            let mut s = shared.state.lock();
            match RuntimeShared::try_pop_locked(&mut s) {
                Some(p) => Some(p),
                None => {
                    s.cur_workers -= 1;
                    None
                }
            }
        };
        let Some((id, job, weak)) = popped else {
            shared
                .counters
                .workers_retired
                .fetch_add(1, Ordering::Relaxed);
            return;
        };
        execute_job(shared, id, job, &weak);
    }
}

fn execute_job(shared: &Arc<RuntimeShared>, id: u64, job: Job, weak: &Weak<Dataset>) {
    let dataset = weak.upgrade();
    if let Some(dataset) = &dataset {
        shared
            .counters
            .jobs_executed
            .fetch_add(1, Ordering::Relaxed);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &shared.throttle {
                Some(t) => lsm_storage::throttle::with_throttle(t.clone(), || {
                    run_job(dataset, shared, job)
                }),
                None => run_job(dataset, shared, job),
            }));
        let waited = lsm_storage::throttle::take_scope_wait_ns();
        if waited > 0 {
            dataset
                .stats()
                .throttle_wait_ns
                .fetch_add(waited, Ordering::Relaxed);
        }
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => dataset.poison(e),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked".into());
                dataset.poison(lsm_common::Error::invalid(format!(
                    "maintenance worker panicked: {msg}"
                )));
            }
        }
    }
    shared.finish_job(id);
    // Wake stalled writers after every job: flushes free memory, and a
    // poisoned dataset must fail fast rather than hang its writers.
    shared.notify_stalled();
    // Dropped LAST (after the in-flight bookkeeping): if this is the final
    // strong reference, `Dataset::drop` deregisters on this thread and must
    // see its own job already finished.
    drop(dataset);
}

fn run_job(ds: &Arc<Dataset>, shared: &Arc<RuntimeShared>, job: Job) -> Result<()> {
    // The dataset's own handle points at this runtime — jobs re-arm
    // through it so follow-up work lands on the same shared queue.
    let handle = ds
        .runtime_handle()
        .cloned()
        .ok_or_else(|| lsm_common::Error::invalid("dataset lost its runtime registration"))?;
    match job {
        Job::Flush => {
            shared.counters.flush_jobs.fetch_add(1, Ordering::Relaxed);
            let flushed = ds.flush_all()?;
            ds.stats().record_flush_job();
            shared.notify_stalled();
            // Flushes create merge work; enqueue it (deduped) rather than
            // blocking this worker's next flush on a long merge.
            ds.schedule_planned_merges(&handle);
            // Writers that raced past the budget while we flushed would
            // only re-trigger on their next write — but stalled writers
            // make no writes, so the flush job re-arms itself.
            if flushed
                && ds.mem_total_bytes() > ds.config().memory_budget
                && handle.schedule_flush()
            {
                ds.stats().bump(&ds.stats().jobs_enqueued);
            }
            Ok(())
        }
        Job::Merge(plan) => {
            shared.counters.merge_jobs.fetch_add(1, Ordering::Relaxed);
            ds.stats().record_merge_job();
            // Execute the planned merge (serialized by the dataset's merge
            // lock; a stale plan is skipped), then enqueue whatever the
            // policy calls for next — the queue converges to quiescence
            // one targeted job at a time instead of holding the merge lock
            // for a full cascade.
            ds.execute_merge_plan(&plan)?;
            ds.schedule_planned_merges(&handle);
            Ok(())
        }
    }
}

impl Dataset {
    pub(crate) fn maintenance_stats_refresh(&self) {
        if let Some(handle) = self.runtime_handle() {
            self.stats()
                .queue_depth
                .store(handle.queue_depth() as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetConfig, MaintenanceMode, SecondaryIndexDef, StrategyKind};
    use lsm_common::{FieldType, Record, Schema, Value};
    use lsm_storage::{Storage, StorageOptions};

    fn schema() -> Schema {
        Schema::new(vec![
            ("id", FieldType::Int),
            ("location", FieldType::Str),
            ("time", FieldType::Int),
        ])
        .unwrap()
    }

    fn config(strategy: StrategyKind) -> DatasetConfig {
        let mut cfg = DatasetConfig::new(schema(), 0);
        cfg.strategy = strategy;
        cfg.secondary_indexes = vec![SecondaryIndexDef {
            name: "location".into(),
            field: 1,
        }];
        cfg.memory_budget = 32 * 1024;
        cfg.maintenance = MaintenanceMode::Background { workers: 2 };
        cfg
    }

    fn rec(id: i64, loc: &str, time: i64) -> Record {
        Record::new(vec![
            Value::Int(id),
            Value::Str(loc.into()),
            Value::Int(time),
        ])
    }

    #[test]
    fn background_mode_flushes_off_the_writer_path() {
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            config(StrategyKind::Validation),
        )
        .unwrap();
        for i in 0..4000 {
            ds.insert(&rec(i, "CA", i)).unwrap();
        }
        ds.maintenance().quiesce().unwrap();
        let snap = ds.stats().snapshot();
        assert!(snap.flushes > 0, "background flushes ran");
        assert!(snap.flush_jobs > 0, "flush jobs recorded");
        assert!(snap.jobs_enqueued > 0, "jobs were enqueued");
        for i in [0, 1999, 3999] {
            assert!(ds.get(&Value::Int(i)).unwrap().is_some(), "id {i}");
        }
    }

    #[test]
    fn private_runtime_is_fixed_size() {
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            config(StrategyKind::Eager),
        )
        .unwrap();
        let rt = ds.runtime_handle().unwrap().runtime().clone();
        assert_eq!(rt.config().min_workers, 2);
        assert_eq!(rt.config().max_workers, 2);
        assert_eq!(rt.stats().datasets, 1);
    }

    #[test]
    fn priority_queue_orders_flush_first_then_smallest_merge() {
        // Exercise the queue on a workerless shared state: jobs pushed in
        // "worst" order must pop flush-first, then merges smallest-first.
        let shared = Arc::new(RuntimeShared::new(EngineConfig::fixed(1)));
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            DatasetConfig::new(schema(), 0),
        )
        .unwrap();
        let id = shared.register(&ds);
        let plan = |end: usize| MergePlan {
            target: crate::dataset::MergeTarget::Primary,
            range: lsm_tree::MergeRange { start: 0, end },
        };
        assert!(shared.schedule_merge(id, plan(1), 900));
        assert!(shared.schedule_merge(id, plan(2), 100));
        assert!(shared.schedule_flush(id));
        assert!(shared.schedule_merge(id, plan(3), 500));

        let mut order = Vec::new();
        let mut s = shared.state.lock();
        while let Some((_, job, _)) = RuntimeShared::try_pop_locked(&mut s) {
            order.push(job);
        }
        assert_eq!(
            order,
            vec![
                Job::Flush,
                Job::Merge(plan(2)),
                Job::Merge(plan(3)),
                Job::Merge(plan(1)),
            ]
        );
    }

    #[test]
    fn dedup_one_flush_job_at_a_time() {
        let shared = Arc::new(RuntimeShared::new(EngineConfig::fixed(1)));
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            DatasetConfig::new(schema(), 0),
        )
        .unwrap();
        let id = shared.register(&ds);
        assert!(shared.schedule_flush(id));
        assert!(!shared.schedule_flush(id), "second flush deduped");
        let plan = MergePlan {
            target: crate::dataset::MergeTarget::Primary,
            range: lsm_tree::MergeRange { start: 0, end: 1 },
        };
        assert!(shared.schedule_merge(id, plan, 10));
        assert!(!shared.schedule_merge(id, plan, 10), "same range deduped");
        assert_eq!(shared.queue_depth_for(id), 2);
    }

    #[test]
    fn deregister_discards_queued_jobs() {
        let shared = Arc::new(RuntimeShared::new(EngineConfig::fixed(1)));
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            DatasetConfig::new(schema(), 0),
        )
        .unwrap();
        let a = shared.register(&ds);
        let b = shared.register(&ds);
        shared.schedule_flush(a);
        shared.schedule_flush(b);
        shared.deregister(a);
        let mut s = shared.state.lock();
        let popped = RuntimeShared::try_pop_locked(&mut s).unwrap();
        assert_eq!(popped.0, b, "only b's job survives");
        assert!(RuntimeShared::try_pop_locked(&mut s).is_none());
    }

    #[test]
    fn wait_idle_for_ignores_other_datasets_jobs() {
        // Workerless shared state: dataset b has a queued job forever, yet
        // waiting on a must return immediately (a hang fails the test run).
        let shared = Arc::new(RuntimeShared::new(EngineConfig::fixed(1)));
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            DatasetConfig::new(schema(), 0),
        )
        .unwrap();
        let a = shared.register(&ds);
        let b = shared.register(&ds);
        assert!(shared.schedule_flush(b));
        shared.wait_idle_for(a);
        assert_eq!(shared.queue_depth_for(b), 1, "b's job untouched");
    }

    #[test]
    fn quiesce_waits_for_queue_drain() {
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            config(StrategyKind::Eager),
        )
        .unwrap();
        for i in 0..3000 {
            ds.insert(&rec(i, "NY", i)).unwrap();
        }
        ds.maintenance().quiesce().unwrap();
        let handle = ds.runtime_handle().unwrap();
        assert_eq!(handle.queue_depth(), 0);
    }

    #[test]
    fn drop_shuts_down_workers() {
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            config(StrategyKind::Validation),
        )
        .unwrap();
        for i in 0..2000 {
            ds.insert(&rec(i, "CA", i)).unwrap();
        }
        drop(ds); // must not hang or leak panicking workers
    }

    #[test]
    fn poisoned_dataset_fails_next_write() {
        let ds = Dataset::open(
            Storage::new(StorageOptions::test()),
            None,
            config(StrategyKind::Validation),
        )
        .unwrap();
        ds.poison(lsm_common::Error::invalid("simulated worker failure"));
        let err = ds.insert(&rec(1, "CA", 1)).unwrap_err();
        assert!(
            err.to_string().contains("simulated worker failure"),
            "{err}"
        );
    }
}
