//! # lsm-engine
//!
//! A from-scratch implementation of *Efficient Data Ingestion and Query
//! Processing for LSM-Based Storage Systems* (Luo & Carey, PVLDB 12(5),
//! 2019).
//!
//! A [`Dataset`] bundles a primary LSM index, an optional primary key
//! index, and any number of secondary indexes (Section 3, Figure 1), and
//! maintains them under one of four strategies ([`StrategyKind`]):
//!
//! * **Eager** — point lookup before every write; indexes and filters are
//!   always up-to-date (the AsterixDB/MyRocks/Phoenix baseline, §3.1);
//! * **Validation** — lazy inserts; queries validate against the primary
//!   key index and background repair cleans obsolete entries (§4);
//! * **Mutable-bitmap** — deletes applied in place through per-component
//!   bitmaps located via the primary key index (§5);
//! * **Deleted-key B+-tree** — AsterixDB's earlier lazy baseline (§4.1).
//!
//! # Quickstart
//!
//! Queries go through the fluent [`Dataset::query`] builder, which resolves
//! the right §4.3 validation method from the dataset's strategy — a query
//! is correct by construction for all four [`StrategyKind`]s:
//!
//! ```
//! use lsm_common::{FieldType, Record, Schema, Value};
//! use lsm_engine::{Dataset, DatasetConfig, SecondaryIndexDef, StrategyKind};
//! use lsm_storage::{Storage, StorageOptions};
//!
//! let schema = Schema::new(vec![
//!     ("id", FieldType::Int),
//!     ("location", FieldType::Str),
//! ]).unwrap();
//! let mut cfg = DatasetConfig::new(schema, 0);
//! cfg.strategy = StrategyKind::Validation;
//! cfg.secondary_indexes.push(SecondaryIndexDef { name: "location".into(), field: 1 });
//! let ds = Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap();
//!
//! ds.insert(&Record::new(vec![Value::Int(101), Value::Str("CA".into())])).unwrap();
//! ds.upsert(&Record::new(vec![Value::Int(101), Value::Str("NY".into())])).unwrap();
//!
//! // Point read by primary key.
//! assert_eq!(
//!     ds.get(&Value::Int(101)).unwrap().unwrap().get(1),
//!     &Value::Str("NY".into()),
//! );
//!
//! // Secondary-index query: no manually chosen ValidationMethod — the
//! // builder picks the correct one for the Validation strategy, so the
//! // stale CA entry is filtered out.
//! let in_ca = ds.query("location").eq("CA").execute().unwrap();
//! assert!(in_ca.is_empty());
//! let in_ny = ds.query("location").eq("NY").execute().unwrap();
//! assert_eq!(in_ny.records()[0].get(0), &Value::Int(101));
//!
//! // Large range queries can stream batch-by-batch with bounded memory.
//! for record in ds.query("location").range("AA", "ZZ").stream().unwrap() {
//!     let record = record.unwrap();
//!     assert_eq!(record.get(0), &Value::Int(101));
//! }
//!
//! // Maintenance goes through a facade with strategy-aware defaults.
//! ds.maintenance().flush().unwrap();
//! let reports = ds.maintenance().repair_all().unwrap();
//! assert_eq!(reports.len(), 1);
//! ```
//!
//! # Architecture
//!
//! Query processing implements the §3.2 point-lookup optimizations
//! (batched lookups, stateful B+-tree cursors, blocked Bloom filters,
//! component-ID propagation), the Direct and Timestamp validation methods
//! (§4.3), index-only queries, and range-filter scans with per-strategy
//! pruning semantics (§6.4.2) — see [`query::QueryBuilder`] for the knobs
//! and [`query::RecordStream`] for the streaming execution path. Index
//! repair (§4.4) supports merge and standalone repair with the Bloom-filter
//! and merge-scan optimizations, plus the DELI primary-repair baseline —
//! see [`Maintenance`] and [`RepairPlan`]. Flush/merge concurrency control
//! for mutable bitmaps implements both the Lock and Side-file methods
//! (§5.3).
//!
//! ## Background maintenance
//!
//! Structural maintenance (flush + merge) is either **inline** — the
//! writer that trips the memory budget pays for the flush and the
//! follow-up merges synchronously; deterministic, used by the `sim_clock`
//! experiments and most tests — or runs on a [`MaintenanceRuntime`]: a
//! bounded, engine-wide worker pool shared by every dataset registered
//! with it.
//!
//! **Registration.** Build a runtime from an [`EngineConfig`]
//! (`EngineConfig::builder().min_workers(1).max_workers(4).build()`) with
//! [`MaintenanceRuntime::start`], then open datasets on it with
//! [`Dataset::open_with_runtime`] — hundreds of datasets share one bounded
//! pool instead of spawning one pool each. Opening with
//! [`MaintenanceMode::Background`]`{ workers }` (or calling
//! `ds.maintenance().background(n)`) instead gives the dataset a *private*
//! fixed-size runtime, preserving the PR 2 per-dataset behaviour. A
//! dataset deregisters on drop, discarding its queued jobs; the runtime
//! shuts down, draining in-flight rebuilds, when its last handle drops.
//!
//! **Priorities.** The queue is a priority queue, not FIFO: flush jobs run
//! before merge jobs (flushes are what release stalled writer memory), and
//! merges run smallest-estimated-input-first so cheap consolidations are
//! never stuck behind a giant merge. Jobs stay deduped — one flush job per
//! dataset, merges keyed by `(dataset, target, range)`. The §5.3 machinery
//! (`BuildLink` redirection, bitmap sharing before installation,
//! retire-on-drop components) makes concurrent writes during rebuilds
//! correct.
//!
//! **Adaptive workers & throttling.** `min_workers` threads are permanent;
//! when the queue outgrows the live workers, transient workers spawn up to
//! `max_workers` — never beyond, which bounds maintenance threads for the
//! whole engine — and retire once the queue drains. With
//! `EngineConfig::io_read_bytes_per_sec` set, workers run every job under
//! a token bucket ([`lsm_storage::IoThrottle`]) charged on device reads,
//! so rebuild scans cannot monopolize read bandwidth; foreground queries
//! are never throttled. Per-runtime counters (queue depth, worker
//! high-water mark, throttle waits) come from
//! [`MaintenanceRuntime::stats`], per-dataset ones from [`EngineStats`].
//!
//! **Backpressure.** Writers never block on the queue. Crossing the memory
//! *budget* only schedules a flush; a writer stalls solely when active +
//! flushing memory exceeds the hard *ceiling*
//! (`DatasetConfig::memory_ceiling`, default 2× the budget), and resumes
//! as soon as a flush frees memory. A failed or panicked job **poisons**
//! its dataset — the next write (and `quiesce`) returns the stored error
//! instead of the process aborting; other datasets on the runtime are
//! unaffected.
//!
//! **Recovery interaction contract.** `ds.maintenance().quiesce()` drains
//! *this dataset's* jobs only. [`recovery::checkpoint`] and
//! [`recovery::simulate_crash`] serialize behind the dataset's flush and
//! merge locks, so a checkpoint is a consistent snapshot even with a merge
//! in flight; [`recovery::recover`] drains the dataset's background jobs,
//! replays with maintenance forced *inline* (replay rewinds the logical
//! clock — background jobs must not race it), and advances the clock past
//! everything durable and replayed before returning.
//!
//! # Deprecation path
//!
//! The historical free functions — [`query::secondary_query`],
//! [`repair::full_repair`], [`repair::merge_repair_secondary`],
//! [`repair::standalone_repair_secondary`], [`repair::primary_repair`] —
//! remain as `#[deprecated]` shims delegating to the builders, and the
//! per-dataset `MaintenanceScheduler` name survives as a `#[deprecated]`
//! alias of [`MaintenanceRuntime`]; all will be removed once external
//! callers migrate.

pub mod cc;
pub mod config;
pub mod dataset;
pub mod keys;
pub mod maintenance;
pub mod query;
pub mod recovery;
pub mod repair;
pub mod scheduler;
pub mod stats;
pub mod txn;

pub use config::{
    DatasetConfig, EngineConfig, EngineConfigBuilder, MaintenanceMode, MergeConfig,
    SecondaryIndexDef, StrategyKind,
};
pub use dataset::{Dataset, MergePlan, MergeTarget, SecondaryIndex};
pub use maintenance::{Maintenance, RepairPlan};
pub use query::{
    PreparedQuery, QueryBuilder, QueryOptions, QueryResult, RecordStream, ValidationMethod,
};
pub use repair::{RepairMode, RepairOptions, RepairReport};
pub use scheduler::{MaintenanceRuntime, RuntimeStatsSnapshot};
pub use stats::{EngineStats, EngineStatsSnapshot};

/// The per-dataset scheduler's old name, kept as an alias so downstream
/// code migrates with a warning instead of a hard break.
#[deprecated(
    note = "renamed to MaintenanceRuntime — one engine-wide runtime now serves many datasets \
            (register with Dataset::open_with_runtime)"
)]
pub type MaintenanceScheduler = MaintenanceRuntime;

// Deprecated free functions, re-exported for backwards compatibility.
#[allow(deprecated)]
pub use query::secondary_query;
#[allow(deprecated)]
pub use repair::{
    full_repair, merge_repair_secondary, primary_repair, standalone_repair_secondary,
};
