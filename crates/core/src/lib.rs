//! # lsm-engine
//!
//! A from-scratch implementation of *Efficient Data Ingestion and Query
//! Processing for LSM-Based Storage Systems* (Luo & Carey, PVLDB 12(5),
//! 2019).
//!
//! A [`Dataset`] bundles a primary LSM index, an optional primary key
//! index, and any number of secondary indexes (Section 3, Figure 1), and
//! maintains them under one of four strategies ([`StrategyKind`]):
//!
//! * **Eager** — point lookup before every write; indexes and filters are
//!   always up-to-date (the AsterixDB/MyRocks/Phoenix baseline, §3.1);
//! * **Validation** — lazy inserts; queries validate against the primary
//!   key index and background repair cleans obsolete entries (§4);
//! * **Mutable-bitmap** — deletes applied in place through per-component
//!   bitmaps located via the primary key index (§5);
//! * **Deleted-key B+-tree** — AsterixDB's earlier lazy baseline (§4.1).
//!
//! # Quickstart
//!
//! Queries go through the fluent [`Dataset::query`] builder, which resolves
//! the right §4.3 validation method from the dataset's strategy — a query
//! is correct by construction for all four [`StrategyKind`]s:
//!
//! ```
//! use lsm_common::{FieldType, Record, Schema, Value};
//! use lsm_engine::{Dataset, DatasetConfig, SecondaryIndexDef, StrategyKind};
//! use lsm_storage::{Storage, StorageOptions};
//!
//! let schema = Schema::new(vec![
//!     ("id", FieldType::Int),
//!     ("location", FieldType::Str),
//! ]).unwrap();
//! let mut cfg = DatasetConfig::new(schema, 0);
//! cfg.strategy = StrategyKind::Validation;
//! cfg.secondary_indexes.push(SecondaryIndexDef { name: "location".into(), field: 1 });
//! let ds = Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap();
//!
//! ds.insert(&Record::new(vec![Value::Int(101), Value::Str("CA".into())])).unwrap();
//! ds.upsert(&Record::new(vec![Value::Int(101), Value::Str("NY".into())])).unwrap();
//!
//! // Point read by primary key.
//! assert_eq!(
//!     ds.get(&Value::Int(101)).unwrap().unwrap().get(1),
//!     &Value::Str("NY".into()),
//! );
//!
//! // Secondary-index query: no manually chosen ValidationMethod — the
//! // builder picks the correct one for the Validation strategy, so the
//! // stale CA entry is filtered out.
//! let in_ca = ds.query("location").eq("CA").execute().unwrap();
//! assert!(in_ca.is_empty());
//! let in_ny = ds.query("location").eq("NY").execute().unwrap();
//! assert_eq!(in_ny.records()[0].get(0), &Value::Int(101));
//!
//! // Large range queries can stream batch-by-batch with bounded memory.
//! for record in ds.query("location").range("AA", "ZZ").stream().unwrap() {
//!     let record = record.unwrap();
//!     assert_eq!(record.get(0), &Value::Int(101));
//! }
//!
//! // Maintenance goes through a facade with strategy-aware defaults.
//! ds.maintenance().flush().unwrap();
//! let reports = ds.maintenance().repair_all().unwrap();
//! assert_eq!(reports.len(), 1);
//! ```
//!
//! # Architecture
//!
//! Query processing implements the §3.2 point-lookup optimizations
//! (batched lookups, stateful B+-tree cursors, blocked Bloom filters,
//! component-ID propagation), the Direct and Timestamp validation methods
//! (§4.3), index-only queries, and range-filter scans with per-strategy
//! pruning semantics (§6.4.2) — see [`query::QueryBuilder`] for the knobs
//! and [`query::RecordStream`] for the streaming execution path. Index
//! repair (§4.4) supports merge and standalone repair with the Bloom-filter
//! and merge-scan optimizations, plus the DELI primary-repair baseline —
//! see [`Maintenance`] and [`RepairPlan`]. Flush/merge concurrency control
//! for mutable bitmaps implements both the Lock and Side-file methods
//! (§5.3).
//!
//! ## Background maintenance
//!
//! Structural maintenance (flush + merge) runs in one of two modes
//! ([`MaintenanceMode`], configured per dataset):
//!
//! * **`Inline`** (default): the writer that trips the memory budget pays
//!   for the flush and the follow-up merges synchronously. Deterministic,
//!   used by the `sim_clock` experiments and most tests.
//! * **`Background { workers }`**: a [`MaintenanceScheduler`] worker pool
//!   owns the rebuilds. Writers only *enqueue* jobs — one flush job per
//!   dataset, merge jobs deduped by `(target, range)` — and the §5.3
//!   machinery (`BuildLink` redirection, bitmap sharing before
//!   installation, retire-on-drop components) makes concurrent writes
//!   during rebuilds correct. Activate it via
//!   `ds.maintenance().background(n)` or by opening the dataset with the
//!   mode preset; `ds.maintenance().quiesce()` drains the queue, and
//!   `flush_now()` forces a synchronous flush in either mode.
//!
//! The **backpressure contract**: writers never block on the queue.
//! Crossing the memory *budget* only schedules a flush; a writer stalls
//! solely when active + flushing memory exceeds the hard *ceiling*
//! (`DatasetConfig::memory_ceiling`, default 2× the budget), and resumes
//! as soon as a flush frees memory. A failed or panicked job **poisons**
//! the dataset — the next write (and `quiesce`) returns the stored error
//! instead of the process aborting; queue depth, executed job, and stall
//! counts are exposed through [`EngineStats`].
//!
//! # Deprecation path
//!
//! The historical free functions — [`query::secondary_query`],
//! [`repair::full_repair`], [`repair::merge_repair_secondary`],
//! [`repair::standalone_repair_secondary`], [`repair::primary_repair`] —
//! remain as `#[deprecated]` shims delegating to the builders and will be
//! removed once external callers migrate.

pub mod cc;
pub mod config;
pub mod dataset;
pub mod keys;
pub mod maintenance;
pub mod query;
pub mod recovery;
pub mod repair;
pub mod scheduler;
pub mod stats;
pub mod txn;

pub use config::{DatasetConfig, MaintenanceMode, MergeConfig, SecondaryIndexDef, StrategyKind};
pub use dataset::{Dataset, MergePlan, MergeTarget, SecondaryIndex};
pub use maintenance::{Maintenance, RepairPlan};
pub use query::{
    PreparedQuery, QueryBuilder, QueryOptions, QueryResult, RecordStream, ValidationMethod,
};
pub use repair::{RepairMode, RepairOptions, RepairReport};
pub use scheduler::MaintenanceScheduler;
pub use stats::{EngineStats, EngineStatsSnapshot};

// Deprecated free functions, re-exported for backwards compatibility.
#[allow(deprecated)]
pub use query::secondary_query;
#[allow(deprecated)]
pub use repair::{
    full_repair, merge_repair_secondary, primary_repair, standalone_repair_secondary,
};
