//! # lsm-engine
//!
//! A from-scratch implementation of *Efficient Data Ingestion and Query
//! Processing for LSM-Based Storage Systems* (Luo & Carey, PVLDB 12(5),
//! 2019).
//!
//! A [`Dataset`] bundles a primary LSM index, an optional primary key
//! index, and any number of secondary indexes (Section 3, Figure 1), and
//! maintains them under one of four strategies ([`StrategyKind`]):
//!
//! * **Eager** — point lookup before every write; indexes and filters are
//!   always up-to-date (the AsterixDB/MyRocks/Phoenix baseline, §3.1);
//! * **Validation** — lazy inserts; queries validate against the primary
//!   key index and background repair cleans obsolete entries (§4);
//! * **Mutable-bitmap** — deletes applied in place through per-component
//!   bitmaps located via the primary key index (§5);
//! * **Deleted-key B+-tree** — AsterixDB's earlier lazy baseline (§4.1).
//!
//! # Quickstart
//!
//! Queries go through the fluent [`Dataset::query`] builder, which resolves
//! the right §4.3 validation method from the dataset's strategy — a query
//! is correct by construction for all four [`StrategyKind`]s:
//!
//! ```
//! use lsm_common::{FieldType, Record, Schema, Value};
//! use lsm_engine::{Dataset, DatasetConfig, SecondaryIndexDef, StrategyKind};
//! use lsm_storage::{Storage, StorageOptions};
//!
//! let schema = Schema::new(vec![
//!     ("id", FieldType::Int),
//!     ("location", FieldType::Str),
//! ]).unwrap();
//! let mut cfg = DatasetConfig::new(schema, 0);
//! cfg.strategy = StrategyKind::Validation;
//! cfg.secondary_indexes.push(SecondaryIndexDef { name: "location".into(), field: 1 });
//! let ds = Dataset::open(Storage::new(StorageOptions::test()), None, cfg).unwrap();
//!
//! ds.insert(&Record::new(vec![Value::Int(101), Value::Str("CA".into())])).unwrap();
//! ds.upsert(&Record::new(vec![Value::Int(101), Value::Str("NY".into())])).unwrap();
//!
//! // Point read by primary key.
//! assert_eq!(
//!     ds.get(&Value::Int(101)).unwrap().unwrap().get(1),
//!     &Value::Str("NY".into()),
//! );
//!
//! // Secondary-index query: no manually chosen ValidationMethod — the
//! // builder picks the correct one for the Validation strategy, so the
//! // stale CA entry is filtered out.
//! let in_ca = ds.query("location").eq("CA").execute().unwrap();
//! assert!(in_ca.is_empty());
//! let in_ny = ds.query("location").eq("NY").execute().unwrap();
//! assert_eq!(in_ny.records()[0].get(0), &Value::Int(101));
//!
//! // Large range queries can stream batch-by-batch with bounded memory.
//! for record in ds.query("location").range("AA", "ZZ").stream().unwrap() {
//!     let record = record.unwrap();
//!     assert_eq!(record.get(0), &Value::Int(101));
//! }
//!
//! // Maintenance goes through a facade with strategy-aware defaults.
//! ds.maintenance().flush().unwrap();
//! let reports = ds.maintenance().repair_all().unwrap();
//! assert_eq!(reports.len(), 1);
//! ```
//!
//! # Architecture
//!
//! The full system map — the 8-crate layering, the write path
//! (shard → seal → flush → merge), the [`WriteBatch`] commit path and the
//! group-commit WAL, the maintenance strategies, and the
//! shared-runtime contract — lives in `ARCHITECTURE.md` at the repository
//! root; its examples compile and run as doctests of this crate (see
//! [`ArchitectureGuide`]). Operational tuning — worker bounds, read/write
//! throttles, quotas, and how to read the stats snapshots and CI perf
//! artifacts — is covered by `docs/OPERATIONS.md` (doctested as
//! [`OperationsGuide`]).
//!
//! Query processing implements the §3.2 point-lookup optimizations
//! (batched lookups, stateful B+-tree cursors, blocked Bloom filters,
//! component-ID propagation), the Direct and Timestamp validation methods
//! (§4.3), index-only queries, and range-filter scans with per-strategy
//! pruning semantics (§6.4.2) — see [`query::QueryBuilder`] for the knobs
//! and [`query::RecordStream`] for the streaming execution path. Index
//! repair (§4.4) supports merge and standalone repair with the Bloom-filter
//! and merge-scan optimizations, plus the DELI primary-repair baseline —
//! see [`Maintenance`] and [`RepairPlan`]. Flush/merge concurrency control
//! for mutable bitmaps implements both the Lock and Side-file methods
//! (§5.3).
//!
//! ## Parallel queries
//!
//! [`QueryBuilder::parallel(n)`](query::QueryBuilder::parallel) executes
//! the Figure 5 pipeline across up to `n` threads: the secondary scan is
//! partitioned along component page boundaries over one atomically
//! captured index snapshot, per-partition candidates are validated,
//! k-way merged, and globally deduplicated (query-driven repair marks are
//! aggregated and applied once), and the record fetch fans out over
//! contiguous primary-key chunks against a shared primary-index snapshot.
//! Results are identical to serial execution and always in primary-key
//! order, from both [`PreparedQuery::execute`](query::PreparedQuery::execute)
//! and [`PreparedQuery::stream`](query::PreparedQuery::stream). Partition
//! tasks run on the runtime's shared [`QueryPool`] when
//! [`EngineConfig::query_workers`](EngineConfig) is set (bounding
//! engine-wide query parallelism; the caller always participates) and on
//! ephemeral threads otherwise; the storage layer's sharded buffer cache
//! (`StorageOptions::cache_shards`) keeps the partitions from serializing
//! on one cache lock. See `ARCHITECTURE.md` ("The read path") for the
//! design and `docs/OPERATIONS.md` for sizing guidance.
//!
//! ## Background maintenance
//!
//! Structural maintenance (flush + merge) is either **inline** — the
//! writer that trips the memory budget pays for the flush and the
//! follow-up merges synchronously; deterministic, used by the `sim_clock`
//! experiments and most tests — or runs on a [`MaintenanceRuntime`]: a
//! bounded, engine-wide worker pool shared by every dataset registered
//! with it.
//!
//! **Registration.** Build a runtime from an [`EngineConfig`]
//! (`EngineConfig::builder().min_workers(1).max_workers(4).build()`) with
//! [`MaintenanceRuntime::start`], then open datasets on it with
//! [`Dataset::open_with_runtime`] — hundreds of datasets share one bounded
//! pool instead of spawning one pool each. Opening with
//! [`MaintenanceMode::Background`]`{ workers }` (or calling
//! `ds.maintenance().background(n)`) instead gives the dataset a *private*
//! fixed-size runtime, preserving the PR 2 per-dataset behaviour. A
//! dataset deregisters on drop, discarding its queued jobs; the runtime
//! shuts down, draining in-flight rebuilds, when its last handle drops.
//!
//! **Priorities & fairness.** The queue is a fair scheduler, not FIFO:
//! flush jobs run before merge jobs (flushes are what release stalled
//! writer memory), with datasets served round-robin within the flush
//! class. Merges are ordered **deficit-round-robin** across datasets —
//! each dataset earns [`EngineConfig::fairness_quantum_bytes`] of credit
//! per scheduling turn and runs its smallest queued merge once the credit
//! covers that merge's estimated input — so ten registered datasets make
//! progress even when one floods the queue, while merges within one
//! dataset still run smallest-estimated-input-first. With
//! [`EngineConfig::max_jobs_per_dataset`] set, a dataset's merges never
//! occupy more than that many workers at once regardless of its backlog
//! (flushes are exempt — they release stalled writer memory, so a flush
//! never waits out its own dataset's in-flight merge). Jobs stay deduped —
//! one flush job per dataset, merges keyed by `(dataset, target,
//! range)`. The §5.3 machinery (`BuildLink` redirection, bitmap
//! sharing before installation, retire-on-drop components) makes
//! concurrent writes during rebuilds correct.
//!
//! **Adaptive workers & throttling.** `min_workers` threads are permanent;
//! when the queue outgrows the live workers, transient workers spawn up to
//! `max_workers` — never beyond, which bounds maintenance threads for the
//! whole engine — and retire once the queue drains. With
//! `EngineConfig::io_read_bytes_per_sec` set, workers run every job under
//! a read token bucket ([`lsm_storage::IoThrottle`]) charged on device
//! reads, so rebuild scans cannot monopolize read bandwidth; with
//! `EngineConfig::io_write_bytes_per_sec` set they additionally run under
//! a write bucket charged on flush-build and merge-output page appends.
//! Foreground queries are never read-throttled and WAL/commit writes are
//! never write-throttled (the log wraps its appends in
//! [`lsm_storage::throttle::exempt_writes`], so even a log force issued
//! from a flush job passes untouched).
//!
//! **Observability.** [`MaintenanceRuntime::stats`] returns one
//! [`RuntimeStatsSnapshot`] covering every registered dataset: queue depth
//! split by class, per-dataset queued/running rows
//! ([`DatasetRuntimeStats`]), worker high-water mark, quota deferrals,
//! cumulative read/write throttle waits, and the list of poisoned
//! datasets; [`MaintenanceRuntime::poisoned`] returns the failed datasets
//! themselves so operators inspect causes without polling each one.
//! Per-dataset counters come from [`EngineStats`], per-device ones from
//! [`lsm_storage::IoStats`].
//!
//! **Backpressure.** Writers never block on the queue. Crossing the memory
//! *budget* only schedules a flush; a writer stalls solely when active +
//! flushing memory exceeds the hard *ceiling*
//! (`DatasetConfig::memory_ceiling`, default 2× the budget), and resumes
//! as soon as a flush frees memory. A failed or panicked job **poisons**
//! its dataset — the next write (and `quiesce`) returns the stored error
//! instead of the process aborting; other datasets on the runtime are
//! unaffected.
//!
//! **Recovery interaction contract.** `ds.maintenance().quiesce()` drains
//! *this dataset's* jobs only. [`recovery::checkpoint`] and
//! [`recovery::simulate_crash`] serialize behind the dataset's flush and
//! merge locks, so a checkpoint is a consistent snapshot even with a merge
//! in flight; [`recovery::recover`] drains the dataset's background jobs,
//! replays with maintenance forced *inline* (replay rewinds the logical
//! clock — background jobs must not race it), and advances the clock past
//! everything durable and replayed before returning.
//!
//! # Deprecation path
//!
//! The historical free functions — [`query::secondary_query`],
//! [`repair::full_repair`], [`repair::merge_repair_secondary`],
//! [`repair::standalone_repair_secondary`], [`repair::primary_repair`] —
//! remain as `#[deprecated]` shims delegating to the builders, and the
//! per-dataset `MaintenanceScheduler` name survives as a `#[deprecated]`
//! alias of [`MaintenanceRuntime`]; all will be removed once external
//! callers migrate.
//!
//! ## Migrating from `MaintenanceScheduler` to `MaintenanceRuntime`
//!
//! `MaintenanceScheduler` was a *per-dataset* worker pool; the alias still
//! compiles, but every dataset opened through it runs its own threads. To
//! migrate:
//!
//! 1. **One dataset, unchanged behaviour** — keep
//!    [`MaintenanceMode::Background`]`{ workers }` in [`DatasetConfig`]
//!    (or call `ds.maintenance().background(n)`); the dataset gets a
//!    private fixed-size runtime exactly like the old scheduler, with no
//!    quotas and no throttling ([`EngineConfig::fixed`]).
//! 2. **Many datasets, one bounded pool** — build an [`EngineConfig`]
//!    (`EngineConfig::builder().min_workers(1).max_workers(4)...`), start
//!    it once with [`MaintenanceRuntime::start`], and open each dataset
//!    with [`Dataset::open_with_runtime`]. Worker counts, read/write
//!    throttles, per-dataset quotas, and the fairness quantum are all
//!    runtime-wide knobs now — per-dataset worker counts in
//!    `MaintenanceMode::Background` are ignored when a shared runtime is
//!    supplied.
//! 3. **Draining** — `scheduler.quiesce()` used to drain the dataset's
//!    whole pool; on a shared runtime, `ds.maintenance().quiesce()` drains
//!    only that dataset's jobs, and [`MaintenanceRuntime::quiesce`] drains
//!    everything.
//!
//! ```
//! use lsm_engine::{Dataset, DatasetConfig, EngineConfig, MaintenanceRuntime};
//! use lsm_storage::{Storage, StorageOptions};
//! # use lsm_common::{FieldType, Schema};
//! # let schema = Schema::new(vec![("id", FieldType::Int)]).unwrap();
//! // Before: one MaintenanceScheduler (= worker pool) per dataset.
//! // After: one runtime, N datasets.
//! let runtime = MaintenanceRuntime::start(
//!     EngineConfig::builder().min_workers(1).max_workers(2).build()?,
//! )?;
//! let a = Dataset::open_with_runtime(
//!     Storage::new(StorageOptions::test()), None,
//!     DatasetConfig::new(schema.clone(), 0), &runtime)?;
//! let b = Dataset::open_with_runtime(
//!     Storage::new(StorageOptions::test()), None,
//!     DatasetConfig::new(schema, 0), &runtime)?;
//! assert_eq!(runtime.stats().datasets, 2);
//! # Ok::<(), lsm_common::Error>(())
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cc;
pub mod config;
pub mod dataset;
pub mod keys;
pub mod maintenance;
pub mod query;
pub mod recovery;
pub mod repair;
pub mod scheduler;
pub mod stats;
pub mod txn;

pub use batch::{BatchOpResult, WriteBatch};
pub use config::{
    DatasetConfig, EngineConfig, EngineConfigBuilder, MaintenanceMode, MergeConfig,
    SecondaryIndexDef, StrategyKind,
};
pub use dataset::{Dataset, MergePlan, MergeTarget, SecondaryIndex};
// Re-exported so consumers can set `DatasetConfig::bloom_kind` without a
// direct lsm-bloom dependency.
pub use lsm_bloom::BloomKind;
pub use maintenance::{Maintenance, RepairPlan};
pub use query::{
    FilterScanBuilder, FilterScanReport, FilterScanStream, PreparedQuery, QueryBuilder,
    QueryOptions, QueryPool, QueryResult, RecordStream, ValidationMethod,
};
pub use repair::{RepairMode, RepairOptions, RepairReport};
pub use scheduler::{DatasetRuntimeStats, MaintenanceRuntime, RuntimeStatsSnapshot};
pub use stats::{EngineStats, EngineStatsSnapshot};

/// The per-dataset scheduler's old name, kept as an alias so downstream
/// code migrates with a warning instead of a hard break.
#[deprecated(
    note = "renamed to MaintenanceRuntime — one engine-wide runtime now serves many datasets \
            (register with Dataset::open_with_runtime)"
)]
pub type MaintenanceScheduler = MaintenanceRuntime;

// Deprecated free functions, re-exported for backwards compatibility.
#[allow(deprecated)]
pub use query::secondary_query;
#[allow(deprecated)]
pub use repair::{
    full_repair, merge_repair_secondary, primary_repair, standalone_repair_secondary,
};

/// The repository's top-level `ARCHITECTURE.md`, rendered here so its
/// every example compiles and runs as a doctest of this crate. Covers the
/// 8-crate map, the write path (memtable → seal → flush → merge), the
/// paper's maintenance strategies, and the shared-runtime contract.
///
/// ---
#[doc = include_str!("../../../ARCHITECTURE.md")]
pub struct ArchitectureGuide;

/// The repository's `docs/OPERATIONS.md`, rendered here so its every
/// example compiles and runs as a doctest of this crate. Covers
/// [`EngineConfig`] tuning, reading [`RuntimeStatsSnapshot`] and
/// `BENCH_ingest.json`, and the recovery/quiesce contract.
///
/// ---
#[doc = include_str!("../../../docs/OPERATIONS.md")]
pub struct OperationsGuide;
