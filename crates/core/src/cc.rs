//! Concurrency control for flush/merge under the Mutable-bitmap strategy
//! (Section 5.3).
//!
//! While a merge rebuilds components, concurrent writers may need to mark
//! entries of those very components deleted. The two methods differ in how
//! such deletes reach the new component:
//!
//! * **Lock method** (Figure 10): the builder S-locks every scanned key and
//!   publishes it to the build link; a writer whose key was already scanned
//!   registers the delete directly against the new component's position.
//! * **Side-file method** (Figure 11): the builder freezes bitmap snapshots
//!   (after draining writers with a dataset lock), scans without locks, and
//!   writers append deleted keys to a side-file that the builder sorts and
//!   applies in a catch-up phase.
//!
//! The baseline is the same merge with no coordination at all — unsafe
//! under concurrency, measured only to isolate the methods' overhead
//! (Figure 23).

use crate::dataset::Dataset;
use lsm_common::{Error, Result};
use lsm_tree::{
    AtomicBitmap, BitmapSnapshot, BuildLink, ComponentBuilder, ComponentId, DiskComponent, LsmScan,
    MergeRange, ScanOptions,
};
use std::ops::Bound;
use std::sync::Arc;

/// Concurrency-control method for a merge with concurrent writers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcMethod {
    /// No coordination (baseline; unsafe under writes).
    Baseline,
    /// Per-key locking (Figure 10).
    Lock,
    /// Side-file buffering (Figure 11).
    SideFile,
}

/// Merges the primary (and primary key) index components of `range` while
/// concurrent writers keep ingesting, using `method` for coordination.
/// Returns the new primary component.
pub fn merge_primary_with_cc(
    ds: &Dataset,
    range: MergeRange,
    method: CcMethod,
) -> Result<Arc<DiskComponent>> {
    let primary = ds.primary();
    let pk_tree = ds
        .pk_index()
        .ok_or_else(|| Error::invalid("cc merge requires the primary key index"))?;
    let p_inputs = primary.components_in_range(range);
    let k_inputs = pk_tree.components_in_range(range);
    if p_inputs.len() < 2 {
        return Err(Error::invalid("cc merge needs at least two components"));
    }
    if p_inputs.len() != k_inputs.len() {
        return Err(Error::corruption(format!(
            "cc merge: primary range holds {} components, pk index {}",
            p_inputs.len(),
            k_inputs.len()
        )));
    }
    let drop_anti = primary.range_includes_oldest(range);
    let id = ComponentId::merged(p_inputs.iter().map(|c| c.id()))
        .ok_or_else(|| Error::invalid("cc merge inputs carry no component IDs"))?;
    let expected: u64 = p_inputs.iter().map(|c| c.num_entries()).sum();

    let mut p_builder = builder_for(ds, &p_inputs, id, expected, true)?;
    let mut k_builder = builder_for(ds, &k_inputs, id, expected, false)?;

    let link = match method {
        CcMethod::Baseline => None,
        CcMethod::Lock => Some(Arc::new(BuildLink::new_lock_method())),
        CcMethod::SideFile => Some(Arc::new(BuildLink::new())),
    };

    // --- initialization phase -------------------------------------------
    // Writers discover the build through the pk-index components (that is
    // where locate_valid lands); Figure 10a line 2 / Figure 11a line 4.
    let snapshots: Option<Vec<Option<BitmapSnapshot>>> = match method {
        CcMethod::SideFile => {
            // Drain ongoing operations, freeze bitmaps, link components.
            let guard = ds.dataset_lock().write();
            let snaps = p_inputs
                .iter()
                .map(|c| c.bitmap().map(|b| b.snapshot()))
                .collect();
            for c in k_inputs.iter().chain(p_inputs.iter()) {
                c.set_successor(link.clone());
            }
            drop(guard);
            Some(snaps)
        }
        CcMethod::Lock => {
            for c in k_inputs.iter().chain(p_inputs.iter()) {
                c.set_successor(link.clone());
            }
            None
        }
        CcMethod::Baseline => None,
    };

    // --- build phase ------------------------------------------------------
    match method {
        CcMethod::SideFile => {
            // Scan with frozen snapshots; no per-key locks (Figure 11a).
            let pairs: Vec<(Arc<DiskComponent>, Option<BitmapSnapshot>)> =
                // INVARIANT: the init phase above produced `Some(snaps)` for
                // the SideFile arm; the two matches use the same `method`.
                p_inputs.iter().cloned().zip(snapshots.unwrap()).collect();
            let mut scan = LsmScan::with_bitmap_snapshots(
                ds.storage().clone(),
                &pairs,
                ScanOptions {
                    emit_anti_matter: true,
                    respect_bitmaps: true,
                },
            )?;
            while let Some((key, entry)) = scan.next_entry()? {
                if entry.anti_matter && drop_anti {
                    continue;
                }
                p_builder.add(&key, &entry)?;
                k_builder.add(&key, &entry.key_only())?;
            }
        }
        CcMethod::Lock | CcMethod::Baseline => {
            // Scan live bitmaps; under Lock, S-lock and re-check each key
            // (Figure 10a lines 4-10).
            let mut scan = LsmScan::new(
                ds.storage().clone(),
                None,
                &p_inputs,
                Bound::Unbounded,
                Bound::Unbounded,
                ScanOptions {
                    emit_anti_matter: true,
                    respect_bitmaps: false,
                },
            )?;
            while let Some((key, entry, rank, ordinal)) = scan.next_reconciled()? {
                if entry.anti_matter {
                    if !drop_anti {
                        p_builder.add(&key, &entry)?;
                        k_builder.add(&key, &entry.key_only())?;
                        if let Some(link) = &link {
                            link.publish_scanned(key);
                        }
                    }
                    continue;
                }
                match (&link, method) {
                    (Some(link), CcMethod::Lock) => {
                        ds.locks().lock_shared(&key);
                        // Re-check validity under the lock: a writer may have
                        // deleted the key since the scan read it.
                        let still_valid = p_inputs[rank].is_valid(ordinal);
                        if still_valid {
                            p_builder.add(&key, &entry)?;
                            k_builder.add(&key, &entry.key_only())?;
                            link.publish_scanned(key.clone());
                        }
                        ds.locks().unlock_shared(&key);
                    }
                    _ => {
                        if p_inputs[rank].is_valid(ordinal) {
                            p_builder.add(&key, &entry)?;
                            k_builder.add(&key, &entry.key_only())?;
                        }
                    }
                }
            }
        }
    }

    // --- catch-up / install phase ------------------------------------------
    let n = p_builder.num_entries();
    let new_p = Arc::new(p_builder.finish()?);
    let new_k = Arc::new(k_builder.finish()?);
    let bitmap = Arc::new(AtomicBitmap::new(n));
    new_p.set_bitmap(bitmap.clone())?;
    new_k.set_bitmap(bitmap.clone())?;

    {
        // Drain writers, absorb buffered deletes, publish the new component,
        // and swap it in.
        let guard = ds.dataset_lock().write();
        if let Some(link) = &link {
            match method {
                CcMethod::SideFile => {
                    let keys = link.close_side_file();
                    ds.storage()
                        .charge_cpu(keys.len() as u64 * ds.storage().cpu().sort_entry_ns);
                    for key in keys {
                        if let Some((_, ord)) = new_k.search(&key)? {
                            bitmap.set(ord);
                        }
                    }
                }
                CcMethod::Lock => {
                    for pos in link.take_direct_deletes() {
                        bitmap.set(pos);
                    }
                }
                CcMethod::Baseline => {}
            }
            link.set_new_component(new_k.clone());
        }
        primary.replace_range(range, new_p.clone(), true)?;
        // Crash window: the primary's merged component is installed, the
        // pk index still holds the pre-merge components (mirrors
        // [`Dataset::merge_correlated`]'s window; recovery realigns it).
        ds.crash_site("merge_install")?;
        pk_tree.replace_range(range, new_k, true)?;
        drop(guard);
    }
    ds.stats().bump(&ds.stats().merges);
    Ok(new_p)
}

fn builder_for(
    ds: &Dataset,
    inputs: &[Arc<DiskComponent>],
    id: ComponentId,
    expected: u64,
    is_primary: bool,
) -> Result<ComponentBuilder> {
    let mut filter = None;
    if is_primary {
        for c in inputs {
            if let Some(f) = c.range_filter() {
                match &mut filter {
                    None => filter = Some(f.clone()),
                    Some(acc) => acc.union(f),
                }
            }
        }
    }
    ComponentBuilder::new(
        ds.storage().clone(),
        id,
        lsm_tree::BuildOptions {
            with_bloom: true,
            bloom_kind: ds.config().bloom_kind,
            bloom_fpr: ds.config().bloom_fpr,
            expected_keys: expected as usize,
            filter,
            make_mutable_bitmap: false,
        },
    )
}
