//! Simulated storage substrate.
//!
//! The paper's experiments run on physical disks (7200rpm SATA HDDs and an
//! SSD) whose behaviour — the large gap between random and sequential reads,
//! and the effect of the buffer cache — shapes every result in Section 6.
//! This crate replaces the physical device with a deterministic simulation:
//!
//! * pages live in memory, but every access is charged against a
//!   [`DiskProfile`] cost model (seek + transfer for a random read, transfer
//!   only for a sequential continuation, free on a buffer-cache hit);
//! * a CLOCK (second-chance) buffer cache of configurable size decides
//!   which accesses hit; it is split into independently locked
//!   [`ShardedCache`] shards (one by default — the classic single CLOCK)
//!   so parallel query partitions do not serialize on one cache lock;
//! * read-ahead batches sequential scans the way the paper's 4MB read-ahead
//!   does;
//! * a [`SimClock`] accumulates simulated nanoseconds of I/O and CPU work,
//!   and [`IoStats`] counts every event for assertions and reporting;
//! * opt-in [`IoThrottle`] token buckets rate-limit the device reads *and*
//!   writes of threads that install them (background rebuild scans, flush
//!   builds and merge outputs), leaving foreground reads and WAL/commit
//!   writes untouched (see [`throttle::with_throttles`] and
//!   [`throttle::exempt_writes`]);
//! * a scripted [`FaultPlan`] can be installed on a device to inject
//!   transient/permanent errors, torn or short writes, and crash triggers
//!   deterministically — by op index or at named engine crash sites (the
//!   seam the `lsm-torture` harness drives).
//!
//! Everything above this crate (B+-trees, LSM components, the engine) does
//! real work on real bytes; only the *timing* is simulated. Benchmarks report
//! simulated seconds (the paper's y-axes) alongside wall-clock time.

#![warn(missing_docs)]

pub mod cache;
pub mod fault;
pub mod pin;
pub mod profile;
pub mod sim_clock;
pub mod stats;
pub mod storage;
pub mod throttle;

pub use cache::{BufferCache, CacheShardStats, ShardedCache};
pub use fault::{FaultAction, FaultOp, FaultPlan, FaultSpec, FaultTrigger, SiteOutcome};
pub use pin::{PageSlice, ValueBuf};
pub use profile::{CpuCosts, DiskProfile};
pub use sim_clock::SimClock;
pub use stats::{IoStats, IoStatsSnapshot};
pub use storage::{FileId, LeafEncoding, PageNo, Storage, StorageOptions};
pub use throttle::IoThrottle;
