//! The simulated storage manager: files of pages plus cost accounting.
//!
//! Files are append-only sequences of fixed-size pages — exactly the shape of
//! LSM disk components and the WAL. Reads go through the buffer cache;
//! misses are charged to the [`DiskProfile`], distinguishing sequential
//! continuations (the previous read on the *same file* was the previous
//! page) from random accesses. This is what makes the paper's central
//! trade-offs — batched vs interleaved point lookups, scans vs index
//! navigation — measurable here.

use crate::cache::{CacheShardStats, ShardedCache};
use crate::fault::{FaultAction, FaultOp, FaultPlan, SiteOutcome};
use crate::profile::{CpuCosts, DiskProfile};
use crate::sim_clock::SimClock;
use crate::stats::{IoStats, IoStatsSnapshot};
use lsm_common::{Error, Result};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// Identifies a simulated file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Page number within a file.
pub type PageNo = u32;

/// On-disk encoding for B+-tree leaf pages built on this storage.
///
/// `Plain` is the original format and stays byte-for-byte identical to what
/// earlier versions wrote. `Prefix` shares key prefixes between adjacent
/// entries with restart points every K entries, trading a little decode CPU
/// for smaller leaves — and therefore more entries per buffer-cache page.
/// `Columnar` keeps the same key compression but splits each page into a
/// key strip and a value strip, so index-only scans and probe filtering
/// read keys without ever decoding value bytes, and each value comes out
/// as one contiguous page slice (the zero-copy fetch path). Readers detect
/// the encoding per page, so mixed-encoding trees (old components plus new
/// flushes) need no migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LeafEncoding {
    /// The original slot-directory format; the default.
    #[default]
    Plain,
    /// Prefix-compressed entries with periodic restart points.
    Prefix,
    /// Separate in-page key and value strips; keys prefix-compressed.
    Columnar,
}

impl LeafEncoding {
    /// Short name for reports and repro lines.
    pub fn name(self) -> &'static str {
        match self {
            LeafEncoding::Plain => "plain",
            LeafEncoding::Prefix => "prefix",
            LeafEncoding::Columnar => "columnar",
        }
    }

    /// Parses [`LeafEncoding::name`] output back into an encoding.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "plain" => Some(LeafEncoding::Plain),
            "prefix" => Some(LeafEncoding::Prefix),
            "columnar" => Some(LeafEncoding::Columnar),
            _ => None,
        }
    }
}

/// Configuration for a [`Storage`] instance.
#[derive(Debug, Clone)]
pub struct StorageOptions {
    /// Page size in bytes (the paper uses 128KB on HDD, 32KB on SSD).
    pub page_size: usize,
    /// Buffer cache capacity, in pages.
    pub cache_pages: usize,
    /// Independently locked buffer-cache shards (see [`ShardedCache`]).
    /// `1` — the default — behaves
    /// exactly like the classic single CLOCK; raise it so parallel query
    /// partitions stop serializing on one cache lock.
    pub cache_shards: usize,
    /// Read-ahead window for scans, in pages (the paper uses 4MB).
    pub readahead_pages: u32,
    /// Device cost model.
    pub profile: DiskProfile,
    /// CPU cost model.
    pub cpu: CpuCosts,
    /// Leaf-page encoding for B+-trees built on this storage (see
    /// [`LeafEncoding`]). Defaults to [`LeafEncoding::Plain`], the
    /// original on-disk format.
    pub leaf_encoding: LeafEncoding,
}

impl StorageOptions {
    /// The paper's HDD configuration scaled to a given cache size in bytes.
    /// A non-zero `cache_bytes` always yields a usable cache: the page
    /// count is rounded *up*, so a cache smaller than one page holds one
    /// page instead of being silently disabled.
    pub fn hdd(cache_bytes: usize) -> Self {
        let page_size = 128 * 1024;
        StorageOptions {
            page_size,
            cache_pages: cache_bytes.div_ceil(page_size),
            cache_shards: 1,
            readahead_pages: (4 * 1024 * 1024 / page_size) as u32,
            profile: DiskProfile::hdd(),
            cpu: CpuCosts::default(),
            leaf_encoding: LeafEncoding::Plain,
        }
    }

    /// The paper's SSD configuration scaled to a given cache size in bytes.
    /// Like [`StorageOptions::hdd`], the page count rounds up so a small
    /// non-zero `cache_bytes` never disables the cache.
    pub fn ssd(cache_bytes: usize) -> Self {
        let page_size = 32 * 1024;
        StorageOptions {
            page_size,
            cache_pages: cache_bytes.div_ceil(page_size),
            cache_shards: 1,
            readahead_pages: (4 * 1024 * 1024 / page_size) as u32,
            profile: DiskProfile::ssd(),
            cpu: CpuCosts::default(),
            leaf_encoding: LeafEncoding::Plain,
        }
    }

    /// An NVMe drive scaled to a given cache size in bytes: much smaller
    /// pages and a near-flat random/sequential gap compared to
    /// [`StorageOptions::hdd`]/[`StorageOptions::ssd`]. Like those, the
    /// page count rounds up so a small non-zero `cache_bytes` never
    /// disables the cache.
    pub fn nvme(cache_bytes: usize) -> Self {
        let page_size = 16 * 1024;
        StorageOptions {
            page_size,
            cache_pages: cache_bytes.div_ceil(page_size),
            cache_shards: 1,
            readahead_pages: (4 * 1024 * 1024 / page_size) as u32,
            profile: DiskProfile::nvme(),
            cpu: CpuCosts::default(),
            leaf_encoding: LeafEncoding::Plain,
        }
    }

    /// The NVMe profile with a deliberately tiny (single-page) buffer
    /// cache: every re-read reaches the device, which is what makes device
    /// latencies — not cache policy — dominate a measurement.
    pub fn nvme_tiny_cache() -> Self {
        StorageOptions {
            cache_pages: 1,
            ..StorageOptions::nvme(1)
        }
    }

    /// Small configuration for unit tests.
    pub fn test() -> Self {
        StorageOptions {
            page_size: 4096,
            cache_pages: 64,
            cache_shards: 1,
            readahead_pages: 8,
            profile: DiskProfile::hdd(),
            cpu: CpuCosts::default(),
            leaf_encoding: LeafEncoding::Plain,
        }
    }
}

#[derive(Debug, Default)]
struct FileState {
    pages: Vec<Arc<[u8]>>,
    deleted: bool,
}

/// The simulated storage device.
///
/// Shared via `Arc`; all methods take `&self`.
#[derive(Debug)]
pub struct Storage {
    opts: StorageOptions,
    clock: SimClock,
    stats: IoStats,
    files: RwLock<Vec<FileState>>,
    cache: ShardedCache,
    /// Device head position: the last `(file, page)` that reached the
    /// device. A read is sequential only if it continues from here —
    /// interleaving reads across files moves the head and costs seeks,
    /// which is exactly the effect the paper's batched point lookups avoid.
    head: Mutex<Option<(FileId, PageNo)>>,
    /// Last file appended to, for write-seek charging.
    last_write: Mutex<Option<FileId>>,
    /// Installed fault-injection script, if any (see [`FaultPlan`]).
    fault: RwLock<Option<Arc<FaultPlan>>>,
}

impl Storage {
    /// Creates a storage device with its own clock.
    pub fn new(opts: StorageOptions) -> Arc<Self> {
        Self::with_clock(opts, SimClock::new())
    }

    /// Creates a storage device sharing an existing clock (e.g. the data and
    /// log devices of one node accumulate into one timeline).
    pub fn with_clock(opts: StorageOptions, clock: SimClock) -> Arc<Self> {
        let cache = ShardedCache::new(opts.cache_pages, opts.cache_shards.max(1));
        Arc::new(Storage {
            opts,
            clock,
            stats: IoStats::new(),
            files: RwLock::new(Vec::new()),
            cache,
            head: Mutex::new(None),
            last_write: Mutex::new(None),
            fault: RwLock::new(None),
        })
    }

    /// Installs a fault-injection plan on this device. The same
    /// [`Arc<FaultPlan>`] may be installed on several devices (data + WAL)
    /// so their op counters share one deterministic schedule.
    pub fn install_fault_plan(&self, plan: Arc<FaultPlan>) {
        *self.fault.write() = Some(plan);
    }

    /// Removes the installed fault plan, if any.
    pub fn clear_fault_plan(&self) {
        *self.fault.write() = None;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.fault.read().clone()
    }

    /// Probes the crash site `name` against the installed fault plan:
    /// engine layers thread these probes through their WAL / flush / merge
    /// / checkpoint paths (the [`crash_site!`](crate::crash_site) macro
    /// wraps the early return). Non-error actions scripted on a site
    /// (torn/short writes) are meaningless there and fail permanently.
    pub fn probe_crash_site(&self, name: &str) -> SiteOutcome {
        let Some(plan) = self.fault_plan() else {
            return SiteOutcome::Unarmed;
        };
        if !plan.is_armed() {
            return SiteOutcome::Unarmed;
        }
        match plan.on_site(name) {
            None => SiteOutcome::Armed,
            Some(action) => {
                self.stats
                    .faults_injected
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                SiteOutcome::Fired(FaultPlan::action_error(
                    action,
                    &format!("crash site {name:?}"),
                ))
            }
        }
    }

    /// Consults the fault plan for an operation of class `op`. Error-like
    /// actions return `Err`; write-mutating actions are returned for
    /// `append_page` to apply.
    fn fault_check(&self, op: FaultOp, what: &str) -> Result<Option<FaultAction>> {
        let Some(plan) = self.fault_plan() else {
            return Ok(None);
        };
        let Some(action) = plan.on_op(op) else {
            return Ok(None);
        };
        self.stats
            .faults_injected
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        match action {
            FaultAction::TornWrite { .. } | FaultAction::ShortWrite { .. }
                if op == FaultOp::Append =>
            {
                Ok(Some(action))
            }
            FaultAction::TransientError | FaultAction::PermanentError | FaultAction::Crash => {
                Err(FaultPlan::action_error(action, what))
            }
            // A torn/short write scripted on a non-append op degrades to a
            // permanent error: there is no page to tear.
            _ => Err(FaultPlan::action_error(FaultAction::PermanentError, what)),
        }
    }

    /// The configured page size.
    pub fn page_size(&self) -> usize {
        self.opts.page_size
    }

    /// The CPU cost model.
    pub fn cpu(&self) -> &CpuCosts {
        &self.opts.cpu
    }

    /// The device cost model.
    pub fn profile(&self) -> &DiskProfile {
        &self.opts.profile
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Snapshot of the I/O counters.
    pub fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    /// Records one WAL group commit: a single device append that covered
    /// `records` staged log records.
    pub fn note_wal_group(&self, records: u64) {
        self.stats
            .wal_groups
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.stats
            .wal_grouped_records
            .fetch_add(records, std::sync::atomic::Ordering::Relaxed);
    }

    /// Live counters (for recording bloom checks etc. from upper layers).
    pub fn raw_stats(&self) -> &IoStats {
        &self.stats
    }

    /// Charges `ns` of CPU work to the simulated clock.
    pub fn charge_cpu(&self, ns: u64) {
        self.clock.advance(ns);
        self.stats
            .cpu_ns
            .fetch_add(ns, std::sync::atomic::Ordering::Relaxed);
    }

    /// Creates an empty file.
    pub fn create_file(&self) -> FileId {
        let mut files = self.files.write();
        files.push(FileState::default());
        FileId((files.len() - 1) as u32)
    }

    /// Appends one page (at most `page_size` bytes). Returns its page number.
    ///
    /// Appends are charged as sequential writes, with a seek when the write
    /// target switches files.
    pub fn append_page(&self, file: FileId, data: &[u8]) -> Result<PageNo> {
        if data.len() > self.opts.page_size {
            return Err(Error::Storage(format!(
                "page of {} bytes exceeds page size {}",
                data.len(),
                self.opts.page_size
            )));
        }
        let injected = self.fault_check(FaultOp::Append, &format!("append to {file:?}"))?;
        // Rate-limit first: threads that installed a write IoThrottle
        // (background flush builds and merge outputs) pay for the page
        // before it reaches the device, so foreground writers see the
        // bandwidth the bucket reserved for them. Foreground threads (and
        // WAL appends, which run under `exempt_writes`) have no installed
        // bucket and pass for free.
        let waited = crate::throttle::consume_active_write(self.opts.page_size as u64);
        if waited > 0 {
            self.stats
                .write_throttle_wait_ns
                .fetch_add(waited, std::sync::atomic::Ordering::Relaxed);
        }
        let page_no = {
            let mut files = self.files.write();
            let state = files
                .get_mut(file.0 as usize)
                .ok_or_else(|| Error::Storage(format!("no such file {file:?}")))?;
            if state.deleted {
                return Err(Error::Storage(format!("file {file:?} is deleted")));
            }
            // An injected torn write keeps the page length but zeroes the
            // tail (bytes that never reached the platter); a short write
            // truncates the page outright. Both look like a success to the
            // writer — the damage is only discovered after the crash.
            match injected {
                Some(FaultAction::TornWrite { keep_bytes }) => {
                    let mut page = data.to_vec();
                    let keep = keep_bytes.min(page.len());
                    page[keep..].fill(0);
                    state.pages.push(Arc::from(page.as_slice()));
                    self.stats
                        .torn_writes
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                Some(FaultAction::ShortWrite { keep_bytes }) => {
                    let keep = keep_bytes.min(data.len());
                    state.pages.push(Arc::from(&data[..keep]));
                    self.stats
                        .torn_writes
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                _ => state.pages.push(Arc::from(data)),
            }
            (state.pages.len() - 1) as PageNo
        };
        let mut seek = 0;
        {
            let mut lw = self.last_write.lock();
            if *lw != Some(file) {
                seek = self.opts.profile.write_seek_ns;
                *lw = Some(file);
            }
        }
        self.clock
            .advance(seek + self.opts.profile.transfer_ns(self.opts.page_size));
        self.stats
            .pages_written
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(data.len() as u64, std::sync::atomic::Ordering::Relaxed);
        Ok(page_no)
    }

    /// Number of pages in `file`.
    pub fn file_pages(&self, file: FileId) -> Result<u32> {
        let files = self.files.read();
        let state = files
            .get(file.0 as usize)
            .ok_or_else(|| Error::Storage(format!("no such file {file:?}")))?;
        if state.deleted {
            return Err(Error::Storage(format!("file {file:?} is deleted")));
        }
        Ok(state.pages.len() as u32)
    }

    /// Reads one page, going through the buffer cache and charging the
    /// device model on a miss.
    pub fn read_page(&self, file: FileId, page: PageNo) -> Result<Arc<[u8]>> {
        self.fault_check(FaultOp::Read, &format!("read of {file:?}/{page}"))?;
        let data = {
            let files = self.files.read();
            let state = files
                .get(file.0 as usize)
                .ok_or_else(|| Error::Storage(format!("no such file {file:?}")))?;
            if state.deleted {
                return Err(Error::Storage(format!("file {file:?} is deleted")));
            }
            state
                .pages
                .get(page as usize)
                .ok_or_else(|| Error::Storage(format!("page {page} out of bounds in {file:?}")))?
                .clone()
        };

        let hit = self.cache.access(file, page);
        if hit {
            self.stats
                .cache_hits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Ok(data);
        }
        self.charge_read(file, page, 1);
        Ok(data)
    }

    /// Charges a device read of `count` pages starting at `(file, page)`.
    fn charge_read(&self, file: FileId, page: PageNo, count: u32) {
        // Rate-limit first: threads that installed a read IoThrottle
        // (background rebuild scans) pay for the bytes before the device
        // model runs, so foreground readers see the bandwidth the bucket
        // reserved for them.
        let waited =
            crate::throttle::consume_active_read(u64::from(count) * self.opts.page_size as u64);
        if waited > 0 {
            self.stats
                .throttle_wait_ns
                .fetch_add(waited, std::sync::atomic::Ordering::Relaxed);
        }
        let sequential = {
            let mut head = self.head.lock();
            let seq = page > 0 && *head == Some((file, page - 1));
            *head = Some((file, page + count - 1));
            seq
        };
        let bytes = self.opts.page_size;
        let cost = if sequential {
            self.stats
                .seq_reads
                .fetch_add(u64::from(count), std::sync::atomic::Ordering::Relaxed);
            u64::from(count) * self.opts.profile.sequential_read_ns(bytes)
        } else {
            self.stats
                .rand_reads
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.stats
                .seq_reads
                .fetch_add(u64::from(count - 1), std::sync::atomic::Ordering::Relaxed);
            self.opts.profile.random_read_ns(bytes)
                + u64::from(count - 1) * self.opts.profile.sequential_read_ns(bytes)
        };
        self.stats.bytes_read.fetch_add(
            u64::from(count) * bytes as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        self.clock.advance(cost);
    }

    /// Reads `count` pages starting at `page` as one read-ahead burst: one
    /// seek (if the head has to move) plus streaming transfer, with all
    /// pages admitted to the cache. This is how scans amortize seeks the
    /// way the paper's 4MB read-ahead does.
    ///
    /// Returns the page handles from the same single file-table lookup, so
    /// callers consume the burst directly instead of re-acquiring the file
    /// lock once per page via [`Storage::page_data`] for bytes the call
    /// just loaded.
    pub fn read_pages(&self, file: FileId, page: PageNo, count: u32) -> Result<Vec<Arc<[u8]>>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        self.fault_check(
            FaultOp::Read,
            &format!("read burst of {file:?}/{page}+{count}"),
        )?;
        let pages = self.page_data_batch(file, page, count)?;
        // Admit all pages; charge only those not already resident. Each
        // page locks only its own cache shard, so a burst never holds the
        // whole cache against concurrent readers.
        let mut misses = 0u32;
        let mut first_miss = page;
        for p in page..page + count {
            if !self.cache.access(file, p) {
                if misses == 0 {
                    first_miss = p;
                }
                misses += 1;
            } else {
                self.stats
                    .cache_hits
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        if misses > 0 {
            self.charge_read(file, first_miss, misses);
        }
        Ok(pages)
    }

    /// Read-ahead window from the configuration.
    pub fn readahead_pages(&self) -> u32 {
        self.opts.readahead_pages.max(1)
    }

    /// Returns page bytes without touching the cache or charging the device
    /// — for readers holding pages in a private scan buffer that were
    /// already charged by a [`Storage::read_pages`] burst.
    pub fn page_data(&self, file: FileId, page: PageNo) -> Result<Arc<[u8]>> {
        let files = self.files.read();
        let state = files
            .get(file.0 as usize)
            .ok_or_else(|| Error::Storage(format!("no such file {file:?}")))?;
        if state.deleted {
            return Err(Error::Storage(format!("file {file:?} is deleted")));
        }
        state
            .pages
            .get(page as usize)
            .cloned()
            .ok_or_else(|| Error::Storage(format!("page {page} out of bounds in {file:?}")))
    }

    /// Returns `count` consecutive page handles from one file-table lookup,
    /// without touching the cache or charging the device — the batched
    /// sibling of [`Storage::page_data`] for readers consuming a burst that
    /// [`Storage::read_pages`] already charged. Each page beyond the first
    /// is a per-page lock acquisition the caller no longer pays; the saving
    /// is counted in [`IoStats::batched_lookups_saved`].
    pub fn page_data_batch(
        &self,
        file: FileId,
        page: PageNo,
        count: u32,
    ) -> Result<Vec<Arc<[u8]>>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let pages = {
            let files = self.files.read();
            let state = files
                .get(file.0 as usize)
                .ok_or_else(|| Error::Storage(format!("no such file {file:?}")))?;
            if state.deleted {
                return Err(Error::Storage(format!("file {file:?} is deleted")));
            }
            state
                .pages
                .get(page as usize..(page + count) as usize)
                .ok_or_else(|| {
                    Error::Storage(format!(
                        "page batch past end of {file:?} ({}..{} of {})",
                        page,
                        page + count,
                        state.pages.len()
                    ))
                })?
                .to_vec()
        };
        self.stats
            .batched_lookups_saved
            .fetch_add(u64::from(count - 1), std::sync::atomic::Ordering::Relaxed);
        Ok(pages)
    }

    /// Deletes a file, dropping its pages and evicting its cached entries.
    pub fn delete_file(&self, file: FileId) -> Result<()> {
        self.fault_check(FaultOp::Delete, &format!("delete of {file:?}"))?;
        {
            let mut files = self.files.write();
            let state = files
                .get_mut(file.0 as usize)
                .ok_or_else(|| Error::Storage(format!("no such file {file:?}")))?;
            state.deleted = true;
            state.pages = Vec::new();
        }
        self.cache.evict_file(file);
        {
            let mut head = self.head.lock();
            if head.map(|(f, _)| f) == Some(file) {
                *head = None;
            }
        }
        let mut lw = self.last_write.lock();
        if *lw == Some(file) {
            *lw = None;
        }
        Ok(())
    }

    /// Drops everything from the buffer cache (cold-cache benchmarking).
    pub fn clear_cache(&self) {
        self.cache.clear();
        *self.head.lock() = None;
    }

    /// Number of buffer-cache shards.
    pub fn cache_shards(&self) -> usize {
        self.cache.num_shards()
    }

    /// Leaf-page encoding B+-tree builders on this storage should emit.
    pub fn leaf_encoding(&self) -> LeafEncoding {
        self.opts.leaf_encoding
    }

    /// Per-shard buffer-cache hit/miss/occupancy rows. The aggregate hits
    /// are also rolled into [`IoStats`] (`cache_hits`); these rows expose
    /// the distribution, e.g. to spot a skewed shard hash.
    pub fn cache_shard_stats(&self) -> Vec<CacheShardStats> {
        self.cache.shard_stats()
    }

    /// Total bytes held by live files (for reporting dataset sizes).
    pub fn total_bytes(&self) -> u64 {
        let files = self.files.read();
        files
            .iter()
            .filter(|f| !f.deleted)
            .map(|f| f.pages.iter().map(|p| p.len() as u64).sum::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storage() -> Arc<Storage> {
        Storage::new(StorageOptions::test())
    }

    #[test]
    fn append_and_read_roundtrip() {
        let s = storage();
        let f = s.create_file();
        let p0 = s.append_page(f, b"hello").unwrap();
        let p1 = s.append_page(f, b"world").unwrap();
        assert_eq!((p0, p1), (0, 1));
        assert_eq!(&*s.read_page(f, 0).unwrap(), b"hello");
        assert_eq!(&*s.read_page(f, 1).unwrap(), b"world");
        assert_eq!(s.file_pages(f).unwrap(), 2);
    }

    #[test]
    fn oversized_page_rejected() {
        let s = storage();
        let f = s.create_file();
        let big = vec![0u8; s.page_size() + 1];
        assert!(s.append_page(f, &big).is_err());
    }

    #[test]
    fn first_read_misses_second_hits() {
        let s = storage();
        let f = s.create_file();
        s.append_page(f, b"x").unwrap();
        s.read_page(f, 0).unwrap();
        let a = s.stats();
        assert_eq!(a.disk_reads(), 1);
        s.read_page(f, 0).unwrap();
        let b = s.stats();
        assert_eq!(b.disk_reads(), 1);
        assert_eq!(b.cache_hits, 1);
    }

    #[test]
    fn sequential_reads_detected() {
        let opts = StorageOptions {
            cache_pages: 0, // disable cache so every read reaches the device
            ..StorageOptions::test()
        };
        let s = Storage::new(opts);
        let f = s.create_file();
        for _ in 0..4 {
            s.append_page(f, b"p").unwrap();
        }
        for p in 0..4 {
            s.read_page(f, p).unwrap();
        }
        let snap = s.stats();
        assert_eq!(snap.rand_reads, 1); // first read seeks
        assert_eq!(snap.seq_reads, 3);
    }

    #[test]
    fn interleaved_files_break_sequentiality() {
        let opts = StorageOptions {
            cache_pages: 0,
            ..StorageOptions::test()
        };
        let s = Storage::new(opts);
        let f1 = s.create_file();
        let f2 = s.create_file();
        for _ in 0..3 {
            s.append_page(f1, b"a").unwrap();
            s.append_page(f2, b"b").unwrap();
        }
        // Alternating between files moves the device head every time: every
        // read is random. This is the access pattern of naive (unbatched)
        // point lookups across LSM components in the paper.
        for p in 0..3 {
            s.read_page(f1, p).unwrap();
            s.read_page(f2, p).unwrap();
        }
        let snap = s.stats();
        assert_eq!(snap.rand_reads, 6);
        assert_eq!(snap.seq_reads, 0);
    }

    #[test]
    fn readahead_burst_amortizes_seeks() {
        let opts = StorageOptions {
            cache_pages: 16,
            ..StorageOptions::test()
        };
        let s = Storage::new(opts);
        let f = s.create_file();
        for _ in 0..8 {
            s.append_page(f, b"p").unwrap();
        }
        s.read_pages(f, 0, 8).unwrap();
        let snap = s.stats();
        assert_eq!(snap.rand_reads, 1);
        assert_eq!(snap.seq_reads, 7);
        // Every page is now cached.
        for p in 0..8 {
            s.read_page(f, p).unwrap();
        }
        assert_eq!(s.stats().disk_reads(), 8);
        assert_eq!(s.stats().cache_hits, 8);
    }

    #[test]
    fn readahead_skips_resident_pages() {
        let s = Storage::new(StorageOptions::test());
        let f = s.create_file();
        for _ in 0..4 {
            s.append_page(f, b"p").unwrap();
        }
        s.read_page(f, 0).unwrap();
        let before = s.stats();
        s.read_pages(f, 0, 4).unwrap();
        let d = s.stats().since(&before);
        // Page 0 was resident; only 3 pages charged.
        assert_eq!(d.disk_reads(), 3);
        assert_eq!(d.cache_hits, 1);
    }

    #[test]
    fn readahead_rejects_out_of_bounds() {
        let s = Storage::new(StorageOptions::test());
        let f = s.create_file();
        s.append_page(f, b"p").unwrap();
        assert!(s.read_pages(f, 0, 2).is_err());
        assert!(s.read_pages(f, 0, 0).is_ok());
    }

    #[test]
    fn random_reads_cost_more_sim_time() {
        let opts = StorageOptions {
            cache_pages: 0,
            ..StorageOptions::test()
        };
        let s = Storage::new(opts.clone());
        let f = s.create_file();
        for _ in 0..8 {
            s.append_page(f, b"p").unwrap();
        }
        let t0 = s.clock().now_nanos();
        for p in 0..8 {
            s.read_page(f, p).unwrap();
        }
        let seq_time = s.clock().now_nanos() - t0;

        let t1 = s.clock().now_nanos();
        for p in [7, 2, 5, 0, 6, 1, 4, 3] {
            s.read_page(f, p).unwrap();
        }
        let rand_time = s.clock().now_nanos() - t1;
        assert!(rand_time > 3 * seq_time, "{rand_time} vs {seq_time}");
    }

    #[test]
    fn delete_file_then_read_fails() {
        let s = storage();
        let f = s.create_file();
        s.append_page(f, b"x").unwrap();
        s.read_page(f, 0).unwrap();
        s.delete_file(f).unwrap();
        assert!(s.read_page(f, 0).is_err());
        assert!(s.append_page(f, b"y").is_err());
        assert!(s.file_pages(f).is_err());
    }

    #[test]
    fn charge_cpu_advances_clock_and_stats() {
        let s = storage();
        let t0 = s.clock().now_nanos();
        s.charge_cpu(123);
        assert_eq!(s.clock().now_nanos() - t0, 123);
        assert_eq!(s.stats().cpu_ns, 123);
    }

    #[test]
    fn write_seek_charged_on_file_switch() {
        let s = storage();
        let f1 = s.create_file();
        let f2 = s.create_file();
        s.append_page(f1, b"a").unwrap();
        let t0 = s.clock().now_nanos();
        s.append_page(f1, b"b").unwrap(); // same file: no seek
        let seq_cost = s.clock().now_nanos() - t0;
        let t1 = s.clock().now_nanos();
        s.append_page(f2, b"c").unwrap(); // switch: seek
        let switch_cost = s.clock().now_nanos() - t1;
        assert!(switch_cost > seq_cost);
    }

    #[test]
    fn tiny_cache_bytes_round_up_instead_of_disabling() {
        // Regression: integer division used to turn any cache smaller than
        // one page into a zero-capacity (fully disabled) cache.
        let hdd = StorageOptions::hdd(1024);
        assert_eq!(hdd.cache_pages, 1, "sub-page HDD cache must hold a page");
        let ssd = StorageOptions::ssd(1024);
        assert_eq!(ssd.cache_pages, 1, "sub-page SSD cache must hold a page");
        // Partial trailing pages round up too; zero stays disabled.
        assert_eq!(StorageOptions::hdd(128 * 1024 + 1).cache_pages, 2);
        assert_eq!(StorageOptions::hdd(0).cache_pages, 0);
        assert_eq!(StorageOptions::ssd(0).cache_pages, 0);

        // And the rounded-up cache actually caches.
        let s = Storage::new(StorageOptions {
            page_size: 4096,
            ..StorageOptions::hdd(1024)
        });
        let f = s.create_file();
        s.append_page(f, b"x").unwrap();
        s.read_page(f, 0).unwrap();
        s.read_page(f, 0).unwrap();
        assert_eq!(s.stats().cache_hits, 1);
    }

    #[test]
    fn sharded_cache_hits_roll_up_into_io_stats() {
        let opts = StorageOptions {
            cache_pages: 32,
            cache_shards: 4,
            ..StorageOptions::test()
        };
        let s = Storage::new(opts);
        assert_eq!(s.cache_shards(), 4);
        let f = s.create_file();
        for _ in 0..8 {
            s.append_page(f, b"p").unwrap();
        }
        for p in 0..8 {
            s.read_page(f, p).unwrap(); // miss
            s.read_page(f, p).unwrap(); // hit
        }
        let snap = s.stats();
        assert_eq!(snap.cache_hits, 8);
        assert_eq!(snap.disk_reads(), 8);
        let shards = s.cache_shard_stats();
        assert_eq!(shards.iter().map(|x| x.hits).sum::<u64>(), 8);
        assert_eq!(shards.iter().map(|x| x.misses).sum::<u64>(), 8);
    }

    #[test]
    fn total_bytes_counts_live_files_only() {
        let s = storage();
        let f1 = s.create_file();
        let f2 = s.create_file();
        s.append_page(f1, &[0u8; 100]).unwrap();
        s.append_page(f2, &[0u8; 50]).unwrap();
        assert_eq!(s.total_bytes(), 150);
        s.delete_file(f1).unwrap();
        assert_eq!(s.total_bytes(), 50);
    }
}
