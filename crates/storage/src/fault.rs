//! Deterministic fault injection for the simulated storage layer.
//!
//! A [`FaultPlan`] is a small script of failures installed on one or more
//! [`Storage`](crate::Storage) devices (data and WAL devices usually share
//! one plan so counters line up). Each scripted fault names a *trigger* —
//! the N-th operation of a class ([`FaultTrigger::OpIndex`]) or the N-th
//! passage through a named crash site ([`FaultTrigger::Site`]) — and an
//! *action*: fail transiently or permanently, tear or short-write the page
//! being appended, or simulate a power cut ([`FaultAction::Crash`]).
//!
//! Everything is counted with plain atomics and fires while the plan is
//! *armed*, so a single-threaded trigger phase produces a byte-identical
//! fault schedule on every run with the same plan — the property the
//! `lsm-torture` harness builds its seed-replay workflow on. Every fired
//! fault is appended to an event log ([`FaultPlan::events`]) that replays
//! can compare verbatim.

use lsm_common::Error;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The storage operation classes a fault trigger can count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// [`Storage::append_page`](crate::Storage::append_page).
    Append,
    /// [`Storage::read_page`](crate::Storage::read_page) and each
    /// [`Storage::read_pages`](crate::Storage::read_pages) burst (one count
    /// per call).
    Read,
    /// [`Storage::delete_file`](crate::Storage::delete_file).
    Delete,
}

impl FaultOp {
    fn idx(self) -> usize {
        match self {
            FaultOp::Append => 0,
            FaultOp::Read => 1,
            FaultOp::Delete => 2,
        }
    }

    /// Short name used in the event log.
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::Append => "append",
            FaultOp::Read => "read",
            FaultOp::Delete => "delete",
        }
    }
}

/// What happens when a trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the operation with [`Error::TransientIo`]: a retry may succeed.
    TransientError,
    /// Fail the operation with [`Error::Storage`]: retries keep failing the
    /// caller's view of the op, though the fault itself fires only once.
    PermanentError,
    /// The append "succeeds" but only the first `keep_bytes` bytes reach
    /// the platter; the rest of the page reads back as zeroes (a torn
    /// page). The caller sees `Ok`, exactly like a real torn write that is
    /// only discovered after the crash.
    TornWrite {
        /// Bytes that survive at the front of the page.
        keep_bytes: usize,
    },
    /// The append lands truncated to `keep_bytes` bytes (a short write):
    /// the page exists but is shorter than requested. The caller sees `Ok`.
    ShortWrite {
        /// Bytes actually appended.
        keep_bytes: usize,
    },
    /// Simulated power cut: the operation fails with a crash-marker
    /// [`Error::Storage`] and [`FaultPlan::crash_fired`] latches so a
    /// harness knows to run crash recovery.
    Crash,
}

impl FaultAction {
    fn describe(self) -> String {
        match self {
            FaultAction::TransientError => "transient".into(),
            FaultAction::PermanentError => "permanent".into(),
            FaultAction::TornWrite { keep_bytes } => format!("torn({keep_bytes})"),
            FaultAction::ShortWrite { keep_bytes } => format!("short({keep_bytes})"),
            FaultAction::Crash => "crash".into(),
        }
    }
}

/// When a scripted fault fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTrigger {
    /// The `index`-th (0-based) operation of class `op` counted across all
    /// devices the plan is installed on, from the moment the plan is armed.
    OpIndex {
        /// Operation class counted.
        op: FaultOp,
        /// 0-based index of the matching operation.
        index: u64,
    },
    /// The `hit`-th (0-based) passage through the crash site named `name`
    /// (e.g. `"wal_append"`, `"flush_install"`, `"merge_install"`,
    /// `"checkpoint"`) while the plan is armed.
    Site {
        /// Crash-site name as instrumented in the engine.
        name: String,
        /// 0-based passage count at which to fire.
        hit: u64,
    },
}

/// One scripted fault: a trigger plus the action it fires. Each spec fires
/// at most once per plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// When to fire.
    pub trigger: FaultTrigger,
    /// What to do.
    pub action: FaultAction,
}

/// Outcome of probing a crash site against the installed plan.
#[derive(Debug)]
pub enum SiteOutcome {
    /// No plan installed, or the plan is disarmed.
    Unarmed,
    /// The plan is armed but this passage fired nothing.
    Armed,
    /// The passage fired: the caller must propagate the error.
    Fired(Error),
}

/// A deterministic fault script. See the [module docs](self).
#[derive(Debug, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    fired: Vec<AtomicBool>,
    armed: AtomicBool,
    op_counts: [AtomicU64; 3],
    site_counts: Mutex<std::collections::HashMap<String, u64>>,
    crash_fired: AtomicBool,
    faults_injected: AtomicU64,
    events: Mutex<Vec<String>>,
}

impl FaultPlan {
    /// Builds a plan from its scripted faults. The plan starts *disarmed*;
    /// call [`FaultPlan::arm`] around the phase that should be subject to
    /// faults (arming late keeps op indices deterministic when background
    /// threads are active earlier).
    pub fn new(specs: Vec<FaultSpec>) -> Arc<Self> {
        let fired = specs.iter().map(|_| AtomicBool::new(false)).collect();
        Arc::new(FaultPlan {
            specs,
            fired,
            ..Default::default()
        })
    }

    /// Starts counting operations and firing faults.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Stops counting and firing (already-latched state is kept).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// True while armed.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }

    /// True once a [`FaultAction::Crash`] fired.
    pub fn crash_fired(&self) -> bool {
        self.crash_fired.load(Ordering::SeqCst)
    }

    /// Number of faults this plan has injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Ordering::SeqCst)
    }

    /// The scripted faults.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// The ordered log of fired faults, e.g. `["append#3 -> transient",
    /// "site:flush_install#0 -> crash"]`. Two runs of the same plan over
    /// the same deterministic phase produce identical logs.
    pub fn events(&self) -> Vec<String> {
        self.events.lock().clone()
    }

    fn fire(&self, desc: &str, slot: usize) -> FaultAction {
        let action = self.specs[slot].action;
        self.faults_injected.fetch_add(1, Ordering::SeqCst);
        if matches!(action, FaultAction::Crash) {
            self.crash_fired.store(true, Ordering::SeqCst);
        }
        self.events
            .lock()
            .push(format!("{desc} -> {}", action.describe()));
        action
    }

    /// Counts one operation of class `op` and returns the action to apply,
    /// if a spec fires. Returns `None` when disarmed.
    pub fn on_op(&self, op: FaultOp) -> Option<FaultAction> {
        if !self.is_armed() {
            return None;
        }
        let index = self.op_counts[op.idx()].fetch_add(1, Ordering::SeqCst);
        for (i, spec) in self.specs.iter().enumerate() {
            if let FaultTrigger::OpIndex { op: o, index: n } = spec.trigger {
                if o == op && n == index && !self.fired[i].swap(true, Ordering::SeqCst) {
                    return Some(self.fire(&format!("{}#{index}", op.name()), i));
                }
            }
        }
        None
    }

    /// Counts one passage through the crash site `name` and returns the
    /// action to apply, if a spec fires. Returns `None` when disarmed (the
    /// passage is then not counted).
    pub fn on_site(&self, name: &str) -> Option<FaultAction> {
        if !self.is_armed() {
            return None;
        }
        let hit = {
            let mut sites = self.site_counts.lock();
            let c = sites.entry(name.to_string()).or_insert(0);
            let h = *c;
            *c += 1;
            h
        };
        for (i, spec) in self.specs.iter().enumerate() {
            if let FaultTrigger::Site { name: n, hit: h } = &spec.trigger {
                if n == name && *h == hit && !self.fired[i].swap(true, Ordering::SeqCst) {
                    return Some(self.fire(&format!("site:{name}#{hit}"), i));
                }
            }
        }
        None
    }

    /// Builds the error for an error-like action fired at `what`.
    pub fn action_error(action: FaultAction, what: &str) -> Error {
        match action {
            FaultAction::TransientError => {
                Error::transient_io(format!("injected transient fault at {what}"))
            }
            FaultAction::Crash => Error::Storage(format!("injected crash at {what}")),
            _ => Error::Storage(format!("injected fault at {what}")),
        }
    }
}

/// Expands to a crash-site probe against `$storage` (anything with a
/// `probe_crash_site(&str) -> SiteOutcome` method, i.e. a
/// [`Storage`](crate::Storage)), returning early with the injected error
/// when the site fires. Use plain
/// [`Storage::probe_crash_site`](crate::Storage::probe_crash_site) when the
/// armed/hit outcome needs to feed per-engine counters.
#[macro_export]
macro_rules! crash_site {
    ($storage:expr, $name:expr) => {
        if let $crate::fault::SiteOutcome::Fired(e) = $storage.probe_crash_site($name) {
            return Err(e);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_counts_nothing() {
        let plan = FaultPlan::new(vec![FaultSpec {
            trigger: FaultTrigger::OpIndex {
                op: FaultOp::Append,
                index: 0,
            },
            action: FaultAction::TransientError,
        }]);
        assert!(plan.on_op(FaultOp::Append).is_none());
        plan.arm();
        assert!(matches!(
            plan.on_op(FaultOp::Append),
            Some(FaultAction::TransientError)
        ));
        // Latched: the spec does not fire twice.
        assert!(plan.on_op(FaultOp::Append).is_none());
        assert_eq!(plan.faults_injected(), 1);
    }

    #[test]
    fn op_index_counts_from_arming() {
        let plan = FaultPlan::new(vec![FaultSpec {
            trigger: FaultTrigger::OpIndex {
                op: FaultOp::Read,
                index: 2,
            },
            action: FaultAction::PermanentError,
        }]);
        plan.arm();
        assert!(plan.on_op(FaultOp::Read).is_none()); // #0
        assert!(plan.on_op(FaultOp::Append).is_none()); // different class
        assert!(plan.on_op(FaultOp::Read).is_none()); // #1
        assert!(matches!(
            plan.on_op(FaultOp::Read),
            Some(FaultAction::PermanentError)
        )); // #2
    }

    #[test]
    fn site_trigger_fires_on_nth_hit_and_latches_crash() {
        let plan = FaultPlan::new(vec![FaultSpec {
            trigger: FaultTrigger::Site {
                name: "flush_install".into(),
                hit: 1,
            },
            action: FaultAction::Crash,
        }]);
        plan.arm();
        assert!(plan.on_site("flush_install").is_none()); // hit 0
        assert!(plan.on_site("merge_install").is_none()); // other site
        assert!(matches!(
            plan.on_site("flush_install"),
            Some(FaultAction::Crash)
        )); // hit 1
        assert!(plan.crash_fired());
        assert_eq!(plan.events(), vec!["site:flush_install#1 -> crash"]);
    }

    #[test]
    fn event_log_is_deterministic_across_identical_runs() {
        let run = || {
            let plan = FaultPlan::new(vec![
                FaultSpec {
                    trigger: FaultTrigger::OpIndex {
                        op: FaultOp::Append,
                        index: 1,
                    },
                    action: FaultAction::TornWrite { keep_bytes: 7 },
                },
                FaultSpec {
                    trigger: FaultTrigger::Site {
                        name: "checkpoint".into(),
                        hit: 0,
                    },
                    action: FaultAction::TransientError,
                },
            ]);
            plan.arm();
            for _ in 0..3 {
                plan.on_op(FaultOp::Append);
            }
            plan.on_site("checkpoint");
            plan.events()
        };
        assert_eq!(run(), run());
    }
}
