//! I/O read throttling for background rebuild scans.
//!
//! Flush builds and merge scans read entire components; on a shared
//! maintenance runtime serving many datasets those scans would otherwise
//! monopolize the device and starve foreground queries. An [`IoThrottle`]
//! is a token bucket over *bytes read from the device* (cache hits are
//! free): each maintenance worker installs the runtime's throttle for the
//! duration of a job via [`with_throttle`], and [`Storage`](crate::Storage)
//! charges every cache-missing read against the installed bucket, sleeping
//! the worker until tokens are available.
//!
//! Foreground reads (queries, writer-path point lookups) run on threads
//! with no installed throttle and are never delayed.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// A token bucket limiting device-read bandwidth for the threads that opt
/// in via [`with_throttle`].
#[derive(Debug)]
pub struct IoThrottle {
    /// Sustained refill rate.
    bytes_per_sec: u64,
    /// Bucket capacity: reads up to this size pass without waiting when the
    /// bucket is full.
    burst_bytes: u64,
    state: Mutex<BucketState>,
    /// Total nanoseconds throttled threads spent waiting for tokens.
    waited_ns: AtomicU64,
    /// Total bytes accounted against the bucket.
    throttled_bytes: AtomicU64,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_refill: Instant,
}

impl IoThrottle {
    /// Creates a bucket refilling at `bytes_per_sec`, holding at most
    /// `burst_bytes`. Both are clamped to ≥ 1 to keep the arithmetic
    /// well-defined; callers should size the burst to at least a typical
    /// read (a tiny burst still charges correctly but wakes up per chunk).
    pub fn new(bytes_per_sec: u64, burst_bytes: u64) -> Arc<Self> {
        let burst = burst_bytes.max(1);
        Arc::new(IoThrottle {
            bytes_per_sec: bytes_per_sec.max(1),
            burst_bytes: burst,
            state: Mutex::new(BucketState {
                tokens: burst as f64,
                last_refill: Instant::now(),
            }),
            waited_ns: AtomicU64::new(0),
            throttled_bytes: AtomicU64::new(0),
        })
    }

    /// The sustained rate.
    pub fn bytes_per_sec(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Total nanoseconds threads have waited on this bucket.
    pub fn waited_ns(&self) -> u64 {
        self.waited_ns.load(Ordering::Relaxed)
    }

    /// Total bytes accounted against this bucket.
    pub fn throttled_bytes(&self) -> u64 {
        self.throttled_bytes.load(Ordering::Relaxed)
    }

    /// Takes `bytes` tokens, sleeping until the bucket refills. Returns the
    /// nanoseconds spent waiting. Every byte is charged — a request larger
    /// than the burst capacity drains the bucket in burst-sized chunks,
    /// sleeping between refills, so sustained throughput honours the rate
    /// no matter how large individual reads are (read-ahead bursts can be
    /// megabytes against a kilobyte bucket).
    pub fn consume(&self, bytes: u64) -> u64 {
        self.throttled_bytes.fetch_add(bytes, Ordering::Relaxed);
        let mut remaining = bytes as f64;
        let mut waited = Duration::ZERO;
        loop {
            let wait = {
                let mut s = self.state.lock();
                let now = Instant::now();
                let elapsed = now.duration_since(s.last_refill).as_secs_f64();
                s.last_refill = now;
                s.tokens =
                    (s.tokens + elapsed * self.bytes_per_sec as f64).min(self.burst_bytes as f64);
                let take = s.tokens.min(remaining);
                s.tokens -= take;
                remaining -= take;
                if remaining <= 0.0 {
                    None
                } else {
                    // Sleep until the next chunk (at most one bucketful)
                    // has accrued; the loop re-takes and continues.
                    Some(Duration::from_secs_f64(
                        remaining.min(self.burst_bytes as f64) / self.bytes_per_sec as f64,
                    ))
                }
            };
            match wait {
                None => {
                    let ns = waited.as_nanos() as u64;
                    if ns > 0 {
                        self.waited_ns.fetch_add(ns, Ordering::Relaxed);
                    }
                    return ns;
                }
                Some(d) => {
                    // Measure the sleep rather than trusting the request:
                    // the scheduler routinely oversleeps, and operators
                    // tune rates from these counters.
                    let slept = Instant::now();
                    std::thread::sleep(d.max(Duration::from_micros(50)));
                    waited += slept.elapsed();
                }
            }
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Arc<IoThrottle>>> = const { RefCell::new(None) };
    static SCOPE_WAIT_NS: Cell<u64> = const { Cell::new(0) };
}

/// Runs `f` with `throttle` installed as this thread's read throttle:
/// every device read charged by [`Storage`](crate::Storage) inside `f`
/// consumes tokens (and may sleep). The previous installation is restored
/// on exit, so scopes nest.
pub fn with_throttle<T>(throttle: Arc<IoThrottle>, f: impl FnOnce() -> T) -> T {
    let prev = ACTIVE.with(|a| a.borrow_mut().replace(throttle));
    struct Restore(Option<Arc<IoThrottle>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            ACTIVE.with(|a| *a.borrow_mut() = prev);
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Charges `bytes` against the thread's installed throttle, if any.
/// Returns the nanoseconds slept (0 when unthrottled). Called by the
/// storage layer on every device read.
pub(crate) fn consume_active(bytes: u64) -> u64 {
    let throttle = ACTIVE.with(|a| a.borrow().clone());
    match throttle {
        None => 0,
        Some(t) => {
            let ns = t.consume(bytes);
            if ns > 0 {
                SCOPE_WAIT_NS.with(|w| w.set(w.get() + ns));
            }
            ns
        }
    }
}

/// Returns and resets this thread's accumulated throttle wait since the
/// last call — maintenance workers use it to attribute waits to the
/// dataset whose job they just ran.
pub fn take_scope_wait_ns() -> u64 {
    SCOPE_WAIT_NS.with(|w| w.replace(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_bucket_passes_without_waiting() {
        let t = IoThrottle::new(1_000_000, 64 * 1024);
        assert_eq!(t.consume(4096), 0);
        assert_eq!(t.throttled_bytes(), 4096);
        assert_eq!(t.waited_ns(), 0);
    }

    #[test]
    fn drained_bucket_forces_a_wait() {
        // 1MB/s, 4KB burst: the second 4KB read must wait ~4ms.
        let t = IoThrottle::new(1_000_000, 4096);
        t.consume(4096);
        let waited = t.consume(4096);
        assert!(waited > 0, "drained bucket should block");
        assert!(t.waited_ns() >= waited);
    }

    #[test]
    fn oversized_request_charges_every_byte() {
        let t = IoThrottle::new(1_000_000_000, 4096);
        // 1MB read against a 4KB bucket: must not deadlock, and must pay
        // for the full megabyte in chunks rather than one bucketful.
        let waited = t.consume(1024 * 1024);
        assert_eq!(t.throttled_bytes(), 1024 * 1024);
        assert!(waited > 0, "a read far beyond the burst must wait");
    }

    #[test]
    fn scoped_install_restores_previous() {
        let t = IoThrottle::new(1_000_000_000, 1 << 20);
        assert_eq!(consume_active(100), 0, "unthrottled outside scope");
        with_throttle(t.clone(), || {
            consume_active(100);
        });
        assert_eq!(t.throttled_bytes(), 100);
        consume_active(100);
        assert_eq!(t.throttled_bytes(), 100, "scope exited");
    }

    #[test]
    fn scope_wait_accumulates_and_resets() {
        take_scope_wait_ns();
        let t = IoThrottle::new(1_000_000, 1024);
        with_throttle(t, || {
            consume_active(1024);
            consume_active(1024); // forces a wait
        });
        assert!(take_scope_wait_ns() > 0);
        assert_eq!(take_scope_wait_ns(), 0, "reset after take");
    }
}
