//! I/O throttling for background maintenance: separate read and write
//! token buckets.
//!
//! Flush builds and merge scans read entire components and write entire
//! replacements; on a shared maintenance runtime serving many datasets that
//! traffic would otherwise monopolize the device and starve foreground
//! queries and commits. An [`IoThrottle`] is a token bucket over *device
//! bytes* — one instance can serve as a read bucket (charged on cache
//! misses) and another as a write bucket (charged on page appends). Each
//! maintenance worker installs the runtime's buckets for the duration of a
//! job via [`with_throttles`]; [`Storage`](crate::Storage) charges every
//! cache-missing read against the installed read bucket and every page
//! append against the installed write bucket, sleeping the worker until
//! tokens are available.
//!
//! Foreground I/O (queries, writer-path point lookups, WAL/commit writes)
//! runs on threads with no installed throttle and is never delayed. The
//! write-ahead log additionally wraps its appends in [`exempt_writes`], so
//! even a log force issued *from* a maintenance job (flushes force the WAL
//! to make the flushed operations durable) is never charged — commit
//! durability is not background work, and the paper dedicates a separate
//! device to the log anyway.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// A token bucket limiting device bandwidth for the threads that opt in
/// via [`with_throttles`]. Direction-agnostic: the runtime installs one
/// instance as its read bucket and (optionally) another as its write
/// bucket.
#[derive(Debug)]
pub struct IoThrottle {
    /// Sustained refill rate.
    bytes_per_sec: u64,
    /// Bucket capacity: requests up to this size pass without waiting when
    /// the bucket is full.
    burst_bytes: u64,
    state: Mutex<BucketState>,
    /// Total nanoseconds throttled threads spent waiting for tokens.
    waited_ns: AtomicU64,
    /// Total bytes accounted against the bucket.
    throttled_bytes: AtomicU64,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_refill: Instant,
}

impl IoThrottle {
    /// Creates a bucket refilling at `bytes_per_sec`, holding at most
    /// `burst_bytes`. Both are clamped to ≥ 1 to keep the arithmetic
    /// well-defined; callers should size the burst to at least a typical
    /// request (a tiny burst still charges correctly but wakes up per
    /// chunk).
    pub fn new(bytes_per_sec: u64, burst_bytes: u64) -> Arc<Self> {
        let burst = burst_bytes.max(1);
        Arc::new(IoThrottle {
            bytes_per_sec: bytes_per_sec.max(1),
            burst_bytes: burst,
            state: Mutex::new(BucketState {
                tokens: burst as f64,
                last_refill: Instant::now(),
            }),
            waited_ns: AtomicU64::new(0),
            throttled_bytes: AtomicU64::new(0),
        })
    }

    /// The sustained rate.
    pub fn bytes_per_sec(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Total nanoseconds threads have waited on this bucket.
    pub fn waited_ns(&self) -> u64 {
        self.waited_ns.load(Ordering::Relaxed)
    }

    /// Total bytes accounted against this bucket.
    pub fn throttled_bytes(&self) -> u64 {
        self.throttled_bytes.load(Ordering::Relaxed)
    }

    /// Takes `bytes` tokens, sleeping until the bucket refills. Returns the
    /// nanoseconds spent waiting. Every byte is charged — a request larger
    /// than the burst capacity drains the bucket in burst-sized chunks,
    /// sleeping between refills, so sustained throughput honours the rate
    /// no matter how large individual requests are (read-ahead bursts can
    /// be megabytes against a kilobyte bucket).
    pub fn consume(&self, bytes: u64) -> u64 {
        self.throttled_bytes.fetch_add(bytes, Ordering::Relaxed);
        let mut remaining = bytes as f64;
        let mut waited = Duration::ZERO;
        loop {
            let wait = {
                let mut s = self.state.lock();
                let now = Instant::now();
                let elapsed = now.duration_since(s.last_refill).as_secs_f64();
                s.last_refill = now;
                s.tokens =
                    (s.tokens + elapsed * self.bytes_per_sec as f64).min(self.burst_bytes as f64);
                let take = s.tokens.min(remaining);
                s.tokens -= take;
                remaining -= take;
                if remaining <= 0.0 {
                    None
                } else {
                    // Sleep until the next chunk (at most one bucketful)
                    // has accrued; the loop re-takes and continues.
                    Some(Duration::from_secs_f64(
                        remaining.min(self.burst_bytes as f64) / self.bytes_per_sec as f64,
                    ))
                }
            };
            match wait {
                None => {
                    let ns = waited.as_nanos() as u64;
                    if ns > 0 {
                        self.waited_ns.fetch_add(ns, Ordering::Relaxed);
                    }
                    return ns;
                }
                Some(d) => {
                    // Measure the sleep rather than trusting the request:
                    // the scheduler routinely oversleeps, and operators
                    // tune rates from these counters.
                    let slept = Instant::now();
                    std::thread::sleep(d.max(Duration::from_micros(50)));
                    waited += slept.elapsed();
                }
            }
        }
    }
}

thread_local! {
    static ACTIVE_READ: RefCell<Option<Arc<IoThrottle>>> = const { RefCell::new(None) };
    static ACTIVE_WRITE: RefCell<Option<Arc<IoThrottle>>> = const { RefCell::new(None) };
    static SCOPE_READ_WAIT_NS: Cell<u64> = const { Cell::new(0) };
    static SCOPE_WRITE_WAIT_NS: Cell<u64> = const { Cell::new(0) };
}

/// Restores a thread-local throttle slot on scope exit (so scopes nest and
/// survive panics).
struct Restore {
    slot: &'static std::thread::LocalKey<RefCell<Option<Arc<IoThrottle>>>>,
    prev: Option<Arc<IoThrottle>>,
}

impl Drop for Restore {
    fn drop(&mut self) {
        let prev = self.prev.take();
        self.slot.with(|a| *a.borrow_mut() = prev);
    }
}

fn install(
    slot: &'static std::thread::LocalKey<RefCell<Option<Arc<IoThrottle>>>>,
    throttle: Option<Arc<IoThrottle>>,
) -> Restore {
    let prev = slot.with(|a| std::mem::replace(&mut *a.borrow_mut(), throttle));
    Restore { slot, prev }
}

/// Runs `f` with `throttle` installed as this thread's *read* throttle:
/// every device read charged by [`Storage`](crate::Storage) inside `f`
/// consumes tokens (and may sleep). The previous read installation is
/// restored on exit, so scopes nest; any installed *write* throttle is
/// left untouched.
pub fn with_throttle<T>(throttle: Arc<IoThrottle>, f: impl FnOnce() -> T) -> T {
    let _read = install(&ACTIVE_READ, Some(throttle));
    f()
}

/// Runs `f` with `read` installed as this thread's read throttle and
/// `write` as its write throttle (either may be `None` = unthrottled).
/// Device reads charged by [`Storage`](crate::Storage) inside `f` consume
/// read tokens; page appends consume write tokens. Previous installations
/// are restored on exit, so scopes nest.
pub fn with_throttles<T>(
    read: Option<Arc<IoThrottle>>,
    write: Option<Arc<IoThrottle>>,
    f: impl FnOnce() -> T,
) -> T {
    let _read = install(&ACTIVE_READ, read);
    let _write = install(&ACTIVE_WRITE, write);
    f()
}

/// Returns this thread's currently installed `(read, write)` throttles.
///
/// Thread-local installations do not cross thread boundaries, so anything
/// that fans work out to other threads on behalf of the caller (the
/// parallel-query pool) captures the caller's buckets here and re-installs
/// them on each worker via [`with_throttles`] — a throttled maintenance job
/// that issues a parallel read therefore stays within its I/O budget no
/// matter how many threads execute it.
pub fn current_throttles() -> (Option<Arc<IoThrottle>>, Option<Arc<IoThrottle>>) {
    (
        ACTIVE_READ.with(|a| a.borrow().clone()),
        ACTIVE_WRITE.with(|a| a.borrow().clone()),
    )
}

/// Runs `f` with any installed *write* throttle suspended: page appends
/// inside `f` are never charged to a bucket, even on a maintenance worker.
/// The write-ahead log wraps its appends in this — commit durability
/// (foreground or forced from a flush job) must not queue behind rebuild
/// output. The read throttle, if any, stays installed.
pub fn exempt_writes<T>(f: impl FnOnce() -> T) -> T {
    let _write = install(&ACTIVE_WRITE, None);
    f()
}

fn consume_slot(
    slot: &'static std::thread::LocalKey<RefCell<Option<Arc<IoThrottle>>>>,
    scope_wait: &'static std::thread::LocalKey<Cell<u64>>,
    bytes: u64,
) -> u64 {
    let throttle = slot.with(|a| a.borrow().clone());
    match throttle {
        None => 0,
        Some(t) => {
            let ns = t.consume(bytes);
            if ns > 0 {
                scope_wait.with(|w| w.set(w.get() + ns));
            }
            ns
        }
    }
}

/// Charges `bytes` against the thread's installed read throttle, if any.
/// Returns the nanoseconds slept (0 when unthrottled). Called by the
/// storage layer on every device read; public so upper layers can account
/// reads that bypass the page path against the same budget.
pub fn consume_active_read(bytes: u64) -> u64 {
    consume_slot(&ACTIVE_READ, &SCOPE_READ_WAIT_NS, bytes)
}

/// Charges `bytes` against the thread's installed write throttle, if any.
/// Returns the nanoseconds slept (0 when unthrottled). Called by the
/// storage layer on every page append; public for the same reason as
/// [`consume_active_read`].
pub fn consume_active_write(bytes: u64) -> u64 {
    consume_slot(&ACTIVE_WRITE, &SCOPE_WRITE_WAIT_NS, bytes)
}

/// Returns and resets this thread's accumulated *read*-throttle wait since
/// the last call — maintenance workers use it to attribute waits to the
/// dataset whose job they just ran.
pub fn take_scope_wait_ns() -> u64 {
    SCOPE_READ_WAIT_NS.with(|w| w.replace(0))
}

/// Returns and resets this thread's accumulated *write*-throttle wait
/// since the last call (the write-side counterpart of
/// [`take_scope_wait_ns`]).
pub fn take_scope_write_wait_ns() -> u64 {
    SCOPE_WRITE_WAIT_NS.with(|w| w.replace(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_bucket_passes_without_waiting() {
        let t = IoThrottle::new(1_000_000, 64 * 1024);
        assert_eq!(t.consume(4096), 0);
        assert_eq!(t.throttled_bytes(), 4096);
        assert_eq!(t.waited_ns(), 0);
    }

    #[test]
    fn drained_bucket_forces_a_wait() {
        // 1MB/s, 4KB burst: the second 4KB read must wait ~4ms.
        let t = IoThrottle::new(1_000_000, 4096);
        t.consume(4096);
        let waited = t.consume(4096);
        assert!(waited > 0, "drained bucket should block");
        assert!(t.waited_ns() >= waited);
    }

    #[test]
    fn oversized_request_charges_every_byte() {
        let t = IoThrottle::new(1_000_000_000, 4096);
        // 1MB read against a 4KB bucket: must not deadlock, and must pay
        // for the full megabyte in chunks rather than one bucketful.
        let waited = t.consume(1024 * 1024);
        assert_eq!(t.throttled_bytes(), 1024 * 1024);
        assert!(waited > 0, "a read far beyond the burst must wait");
    }

    #[test]
    fn scoped_install_restores_previous() {
        let t = IoThrottle::new(1_000_000_000, 1 << 20);
        assert_eq!(consume_active_read(100), 0, "unthrottled outside scope");
        with_throttle(t.clone(), || {
            consume_active_read(100);
        });
        assert_eq!(t.throttled_bytes(), 100);
        consume_active_read(100);
        assert_eq!(t.throttled_bytes(), 100, "scope exited");
    }

    #[test]
    fn read_and_write_buckets_are_independent() {
        let r = IoThrottle::new(1_000_000_000, 1 << 20);
        let w = IoThrottle::new(1_000_000_000, 1 << 20);
        with_throttles(Some(r.clone()), Some(w.clone()), || {
            consume_active_read(100);
            consume_active_write(700);
        });
        assert_eq!(r.throttled_bytes(), 100);
        assert_eq!(w.throttled_bytes(), 700);
        // Read-only install leaves writes unthrottled.
        with_throttle(r.clone(), || {
            assert_eq!(consume_active_write(500), 0);
        });
        assert_eq!(w.throttled_bytes(), 700);
        // A nested read-only install must NOT suspend the outer write
        // bucket — only exempt_writes does that.
        with_throttles(None, Some(w.clone()), || {
            with_throttle(r.clone(), || {
                consume_active_write(5);
            });
        });
        assert_eq!(
            w.throttled_bytes(),
            705,
            "write bucket suspended by with_throttle"
        );
    }

    #[test]
    fn exempt_writes_suspends_only_the_write_bucket() {
        let r = IoThrottle::new(1_000_000_000, 1 << 20);
        let w = IoThrottle::new(1_000_000_000, 1 << 20);
        with_throttles(Some(r.clone()), Some(w.clone()), || {
            exempt_writes(|| {
                consume_active_write(999);
                consume_active_read(42);
            });
            consume_active_write(10);
        });
        assert_eq!(w.throttled_bytes(), 10, "exempted write was charged");
        assert_eq!(r.throttled_bytes(), 42, "read bucket stays installed");
    }

    #[test]
    fn scope_wait_accumulates_and_resets() {
        take_scope_wait_ns();
        let t = IoThrottle::new(1_000_000, 1024);
        with_throttle(t, || {
            consume_active_read(1024);
            consume_active_read(1024); // forces a wait
        });
        assert!(take_scope_wait_ns() > 0);
        assert_eq!(take_scope_wait_ns(), 0, "reset after take");
    }

    #[test]
    fn write_scope_wait_accumulates_and_resets() {
        take_scope_write_wait_ns();
        let t = IoThrottle::new(1_000_000, 1024);
        with_throttles(None, Some(t), || {
            consume_active_write(1024);
            consume_active_write(1024); // forces a wait
        });
        assert!(take_scope_write_wait_ns() > 0);
        assert_eq!(take_scope_write_wait_ns(), 0, "reset after take");
    }
}
