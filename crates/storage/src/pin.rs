//! Pinned-page byte slices: the zero-copy value representation.
//!
//! The buffer pool hands out whole pages as `Arc<[u8]>`. A [`PageSlice`]
//! pins one of those pages and names a byte range inside it, so lookup and
//! fetch paths can pass record bytes around without copying them into
//! fresh allocations — the `Arc` keeps the bytes alive even if the file is
//! deleted underneath (a merge retiring the source component). [`ValueBuf`]
//! is the either-or used in entry values: owned bytes on the write path
//! (memtables, WAL replay), pinned slices on the read path, copied only at
//! the public-API boundary where ownership is required.

use std::ops::Deref;
use std::sync::Arc;

/// A byte range pinned inside a cached page. Cloning is cheap (one `Arc`
/// bump); the underlying page cannot be freed while any slice points into
/// it.
#[derive(Clone)]
pub struct PageSlice {
    page: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl PageSlice {
    /// Pins `page[start..start + len]`. Panics if the range is out of
    /// bounds — the caller derived it from the same page.
    pub fn new(page: Arc<[u8]>, start: usize, len: usize) -> Self {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= page.len()),
            "page slice {start}+{len} out of bounds for page of {}",
            page.len()
        );
        PageSlice { page, start, len }
    }

    /// Pins the range of `page` that `sub` occupies. `sub` must be a
    /// subslice borrowed from `page`'s buffer (the usual case: a value
    /// slice handed out by a leaf view parsed over that page); panics
    /// otherwise.
    pub fn from_subslice(page: &Arc<[u8]>, sub: &[u8]) -> Self {
        let base = page.as_ptr() as usize;
        let p = sub.as_ptr() as usize;
        assert!(
            p >= base && p + sub.len() <= base + page.len(),
            "subslice does not borrow from the given page"
        );
        PageSlice::new(page.clone(), p - base, sub.len())
    }

    /// The pinned bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.page[self.start..self.start + self.len]
    }

    /// The tail of this slice from `offset`, still pinning the same page.
    /// Panics if `offset > len` — callers derived it from these bytes.
    pub fn slice_from(&self, offset: usize) -> PageSlice {
        assert!(offset <= self.len, "slice offset {offset} > {}", self.len);
        PageSlice {
            page: self.page.clone(),
            start: self.start + offset,
            len: self.len - offset,
        }
    }
}

impl Deref for PageSlice {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for PageSlice {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for PageSlice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PageSlice({} bytes @ {})", self.len, self.start)
    }
}

/// Entry-value bytes: owned on the write path, pinned on the read path.
/// Dereferences to `[u8]` either way, so consumers that only *look* at the
/// bytes never know the difference; [`ValueBuf::into_bytes`] is the single
/// copy point for callers that need ownership.
#[derive(Clone, Debug)]
pub enum ValueBuf {
    /// Heap-owned bytes (memtable entries, WAL replay, tests).
    Owned(Vec<u8>),
    /// Bytes pinned inside a cached page (zero-copy lookup/fetch path).
    Pinned(PageSlice),
}

impl ValueBuf {
    /// The empty owned buffer (anti-matter / key-only entries).
    pub fn empty() -> Self {
        ValueBuf::Owned(Vec::new())
    }

    /// The bytes, wherever they live.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            ValueBuf::Owned(v) => v,
            ValueBuf::Pinned(s) => s.as_slice(),
        }
    }

    /// True if the bytes are pinned inside a cached page rather than
    /// heap-owned — the zero-copy observability hook tests assert on.
    pub fn is_pinned(&self) -> bool {
        matches!(self, ValueBuf::Pinned(_))
    }

    /// Converts to owned bytes: free for `Owned`, one copy for `Pinned`.
    /// This is the public-API boundary copy.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            ValueBuf::Owned(v) => v,
            ValueBuf::Pinned(s) => s.as_slice().to_vec(),
        }
    }
}

impl Deref for ValueBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for ValueBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for ValueBuf {
    fn from(v: Vec<u8>) -> Self {
        ValueBuf::Owned(v)
    }
}

impl From<&[u8]> for ValueBuf {
    fn from(v: &[u8]) -> Self {
        ValueBuf::Owned(v.to_vec())
    }
}

impl From<PageSlice> for ValueBuf {
    fn from(s: PageSlice) -> Self {
        ValueBuf::Pinned(s)
    }
}

impl PartialEq for ValueBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ValueBuf {}

impl PartialEq<[u8]> for ValueBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for ValueBuf {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for ValueBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for ValueBuf {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for ValueBuf {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Arc<[u8]> {
        (0u8..32).collect::<Vec<u8>>().into()
    }

    #[test]
    fn slice_pins_range() {
        let p = page();
        let s = PageSlice::new(p.clone(), 4, 3);
        assert_eq!(s.as_slice(), &[4, 5, 6]);
        drop(p);
        assert_eq!(&*s, &[4, 5, 6], "slice outlives other handles");
    }

    #[test]
    fn from_subslice_recovers_offsets() {
        let p = page();
        let sub = &p[10..14];
        let s = PageSlice::from_subslice(&p, sub);
        assert_eq!(s.as_slice(), sub);
    }

    #[test]
    #[should_panic(expected = "does not borrow")]
    fn from_foreign_slice_panics() {
        let p = page();
        let other = vec![1u8, 2, 3];
        let _ = PageSlice::from_subslice(&p, &other);
    }

    #[test]
    fn value_buf_equality_crosses_representations() {
        let p = page();
        let pinned: ValueBuf = PageSlice::new(p, 1, 2).into();
        let owned: ValueBuf = vec![1u8, 2].into();
        assert_eq!(pinned, owned);
        assert_eq!(pinned, [1u8, 2]);
        assert_eq!(owned, vec![1u8, 2]);
        assert!(pinned.is_pinned());
        assert!(!owned.is_pinned());
        assert_eq!(pinned.into_bytes(), vec![1, 2]);
    }
}
