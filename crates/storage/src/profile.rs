//! Device and CPU cost models.
//!
//! Costs are expressed in simulated nanoseconds. The HDD and SSD profiles
//! mirror the two machines of Section 6.1: the HDD numbers reflect a 7200rpm
//! SATA disk (≈8ms average positioning time, ≈100MB/s streaming), the SSD
//! numbers a consumer SATA SSD (≈100µs access, ≈500MB/s streaming). The
//! *ratios* between random and sequential access are what reproduce the
//! paper's figure shapes; the absolute values only set the scale.
//!
//! The cost model charges *simulated* time; the orthogonal
//! [`IoThrottle`](crate::IoThrottle) limits *wall-clock* read bandwidth for
//! background rebuild scans, and its waits are reported separately through
//! [`IoStats::throttle_wait_ns`](crate::IoStats) rather than folded into
//! the device model.

/// Cost model for the simulated disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskProfile {
    /// Cost of positioning before a non-sequential read (seek + rotation).
    pub seek_ns: u64,
    /// Streaming transfer cost per byte.
    pub transfer_ns_per_byte: f64,
    /// Cost of positioning before an appended write. Writes in an LSM are
    /// almost always sequential (flush/merge/WAL), so this is charged only
    /// when switching the write target between files.
    pub write_seek_ns: u64,
}

impl DiskProfile {
    /// 7200rpm SATA hard disk: 8ms seek, 100MB/s transfer.
    pub fn hdd() -> Self {
        DiskProfile {
            seek_ns: 8_000_000,
            transfer_ns_per_byte: 10.0, // 100 MB/s
            write_seek_ns: 8_000_000,
        }
    }

    /// SATA SSD: 100µs access, 500MB/s transfer.
    pub fn ssd() -> Self {
        DiskProfile {
            seek_ns: 100_000,
            transfer_ns_per_byte: 2.0, // 500 MB/s
            write_seek_ns: 100_000,
        }
    }

    /// NVMe drive: 15µs access, 2.5GB/s transfer. The random/sequential
    /// gap nearly vanishes, which is what flattens the paper's
    /// batched-vs-interleaved lookup trade-off on this device class.
    pub fn nvme() -> Self {
        DiskProfile {
            seek_ns: 15_000,
            transfer_ns_per_byte: 0.4, // 2.5 GB/s
            write_seek_ns: 15_000,
        }
    }

    /// Transfer cost of `bytes` bytes.
    pub fn transfer_ns(&self, bytes: usize) -> u64 {
        (bytes as f64 * self.transfer_ns_per_byte) as u64
    }

    /// Cost of a random read of `bytes` bytes.
    pub fn random_read_ns(&self, bytes: usize) -> u64 {
        self.seek_ns + self.transfer_ns(bytes)
    }

    /// Cost of a sequential continuation read of `bytes` bytes.
    pub fn sequential_read_ns(&self, bytes: usize) -> u64 {
        self.transfer_ns(bytes)
    }
}

/// CPU cost model, charged by the index layers so that the in-memory
/// optimizations of Section 3.2 (stateful B+-tree search, blocked Bloom
/// filters) are visible in simulated time exactly where the paper sees them:
/// at high selectivities, where disk time stops dominating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuCosts {
    /// One key comparison (includes the dependent cache access).
    pub key_cmp_ns: u64,
    /// One Bloom-filter probe that misses CPU cache (standard Bloom filters
    /// pay this for each of the k hash probes).
    pub bloom_probe_miss_ns: u64,
    /// One Bloom-filter probe within an already-loaded cache line (blocked
    /// Bloom filters pay the miss once, then this for the remaining probes).
    pub bloom_probe_hit_ns: u64,
    /// Visiting one B+-tree node during a root-to-leaf descent (pointer
    /// chase), in addition to the in-node search comparisons.
    pub btree_node_visit_ns: u64,
    /// One memtable (in-memory component) operation.
    pub memtable_op_ns: u64,
    /// Per-entry cost of streaming an entry through a sort or merge.
    pub sort_entry_ns: u64,
}

impl Default for CpuCosts {
    fn default() -> Self {
        CpuCosts {
            key_cmp_ns: 25,
            bloom_probe_miss_ns: 100,
            bloom_probe_hit_ns: 10,
            btree_node_visit_ns: 100,
            memtable_op_ns: 400,
            sort_entry_ns: 150,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_random_vs_sequential_gap_is_large() {
        let hdd = DiskProfile::hdd();
        let page = 128 * 1024;
        // A random 128KB read is dominated by the seek...
        assert!(hdd.random_read_ns(page) > 5 * hdd.sequential_read_ns(page));
        // ...while on SSD the gap is small.
        let ssd = DiskProfile::ssd();
        assert!(ssd.random_read_ns(page) < 2 * ssd.sequential_read_ns(page));
        // ...and on NVMe it nearly vanishes while everything gets faster.
        let nvme = DiskProfile::nvme();
        assert!(nvme.random_read_ns(page) < ssd.random_read_ns(page));
        assert!(nvme.sequential_read_ns(page) < ssd.sequential_read_ns(page));
    }

    #[test]
    fn transfer_scales_linearly() {
        let hdd = DiskProfile::hdd();
        assert_eq!(hdd.transfer_ns(2000), 2 * hdd.transfer_ns(1000));
        assert_eq!(hdd.transfer_ns(0), 0);
    }

    #[test]
    fn blocked_bloom_is_cheaper_than_standard() {
        let cpu = CpuCosts::default();
        let k = 7u64;
        let standard = k * cpu.bloom_probe_miss_ns;
        let blocked = cpu.bloom_probe_miss_ns + (k - 1) * cpu.bloom_probe_hit_ns;
        assert!(blocked < standard / 3);
    }
}
