//! CLOCK (second-chance) buffer cache, shardable for concurrent readers.
//!
//! The cache tracks *which* pages are resident; the page bytes themselves are
//! owned by the simulated files. A lookup hit means the access is free; a
//! miss means the device cost model is charged and the page is admitted,
//! possibly evicting another page chosen by the CLOCK hand.
//!
//! CLOCK is the classic database buffer replacement policy: a circular array
//! of frames with reference bits, giving LRU-like behaviour with O(1)
//! amortized eviction and no list surgery on every hit.
//!
//! [`BufferCache`] is the single-threaded CLOCK; [`ShardedCache`] splits the
//! capacity across N independently locked shards keyed by a `(file, page)`
//! hash, each with its own CLOCK hand and atomic hit/miss counters, so
//! parallel query partitions do not serialize on one cache mutex. A sharded
//! cache with one shard behaves exactly like the single CLOCK.

use crate::storage::{FileId, PageNo};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PageKey {
    file: FileId,
    page: PageNo,
}

#[derive(Debug)]
struct Frame {
    key: PageKey,
    referenced: bool,
}

/// Fixed-capacity CLOCK cache over `(file, page)` keys.
#[derive(Debug)]
pub struct BufferCache {
    capacity: usize,
    map: HashMap<PageKey, usize>,
    frames: Vec<Frame>,
    hand: usize,
}

impl BufferCache {
    /// Creates a cache holding at most `capacity` pages. A capacity of zero
    /// disables caching entirely (every access misses).
    pub fn new(capacity: usize) -> Self {
        BufferCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            frames: Vec::with_capacity(capacity.min(1 << 20)),
            hand: 0,
        }
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True if no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Marks `(file, page)` as accessed. Returns `true` on a hit.
    /// On a miss the page is admitted (evicting if full).
    pub fn access(&mut self, file: FileId, page: PageNo) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let key = PageKey { file, page };
        if let Some(&idx) = self.map.get(&key) {
            self.frames[idx].referenced = true;
            return true;
        }
        self.admit(key);
        false
    }

    /// True if `(file, page)` is resident, without touching reference bits.
    pub fn contains(&self, file: FileId, page: PageNo) -> bool {
        self.map.contains_key(&PageKey { file, page })
    }

    fn admit(&mut self, key: PageKey) {
        if self.frames.len() < self.capacity {
            self.map.insert(key, self.frames.len());
            self.frames.push(Frame {
                key,
                referenced: true,
            });
            return;
        }
        // CLOCK sweep: clear reference bits until an unreferenced frame is
        // found, then replace it.
        loop {
            let frame = &mut self.frames[self.hand];
            if frame.referenced {
                frame.referenced = false;
                self.hand = (self.hand + 1) % self.frames.len();
            } else {
                self.map.remove(&frame.key);
                frame.key = key;
                frame.referenced = true;
                self.map.insert(key, self.hand);
                self.hand = (self.hand + 1) % self.frames.len();
                return;
            }
        }
    }

    /// Drops all pages belonging to `file` (the file was deleted after a
    /// merge). Eviction here is bookkeeping only — no cost is charged.
    pub fn evict_file(&mut self, file: FileId) {
        if self.frames.is_empty() {
            return;
        }
        // Retain in place, rebuilding the index map.
        let mut kept = Vec::with_capacity(self.frames.len());
        for f in self.frames.drain(..) {
            if f.key.file != file {
                kept.push(f);
            }
        }
        self.frames = kept;
        self.map.clear();
        for (i, f) in self.frames.iter().enumerate() {
            self.map.insert(f.key, i);
        }
        if self.frames.is_empty() {
            self.hand = 0;
        } else {
            self.hand %= self.frames.len();
        }
    }

    /// Empties the cache (used by benchmarks that want cold-cache queries).
    pub fn clear(&mut self) {
        self.map.clear();
        self.frames.clear();
        self.hand = 0;
    }
}

/// Per-shard counters and occupancy, snapshotted by
/// [`ShardedCache::shard_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheShardStats {
    /// Accesses this shard served from a resident page.
    pub hits: u64,
    /// Accesses that missed and were admitted (charged to the device).
    pub misses: u64,
    /// Pages currently resident in this shard.
    pub len: usize,
    /// This shard's slice of the total capacity.
    pub capacity: usize,
}

/// One independently locked slice of a [`ShardedCache`].
#[derive(Debug)]
struct CacheShard {
    clock: Mutex<BufferCache>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A buffer cache split into independently locked CLOCK shards.
///
/// Pages are assigned to shards by a `(file, page)` hash, so concurrent
/// readers (parallel query partitions, maintenance scans) contend only when
/// they touch pages that happen to share a shard. Each shard runs its own
/// CLOCK hand over its slice of the capacity and counts hits/misses in
/// atomics; [`Storage`](crate::Storage) rolls the aggregate into
/// [`IoStats`](crate::IoStats) exactly as it did for the single CLOCK.
///
/// With `shards == 1` the behaviour (admissions, evictions, hit pattern) is
/// identical to a plain [`BufferCache`] of the same capacity.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<CacheShard>,
    capacity: usize,
}

impl ShardedCache {
    /// Creates a cache of `capacity` total pages split over `shards`
    /// independently locked CLOCK instances. The shard count is clamped to
    /// `[1, capacity]` so every shard owns at least one frame (a
    /// zero-capacity cache keeps one disabled shard).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, capacity.max(1));
        let base = capacity / shards;
        let extra = capacity % shards;
        let shards = (0..shards)
            .map(|i| CacheShard {
                clock: Mutex::new(BufferCache::new(base + usize::from(i < extra))),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            })
            .collect();
        ShardedCache { shards, capacity }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total resident pages across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.clock.lock().len()).sum()
    }

    /// True if no pages are resident anywhere.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.clock.lock().is_empty())
    }

    fn shard(&self, file: FileId, page: PageNo) -> &CacheShard {
        // fmix64 finalizer: full avalanche, so consecutive pages of one
        // file spread evenly across shards.
        let h = lsm_bloom::fmix64((u64::from(file.0) << 32) | u64::from(page));
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Marks `(file, page)` as accessed in its shard. Returns `true` on a
    /// hit; on a miss the page is admitted (evicting within the shard).
    pub fn access(&self, file: FileId, page: PageNo) -> bool {
        let shard = self.shard(file, page);
        let hit = shard.clock.lock().access(file, page);
        if hit {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            shard.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// True if `(file, page)` is resident, without touching reference bits
    /// or counters.
    pub fn contains(&self, file: FileId, page: PageNo) -> bool {
        self.shard(file, page).clock.lock().contains(file, page)
    }

    /// Drops all pages belonging to `file` from every shard.
    pub fn evict_file(&self, file: FileId) {
        for shard in &self.shards {
            shard.clock.lock().evict_file(file);
        }
    }

    /// Empties every shard (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.clock.lock().clear();
        }
    }

    /// Point-in-time per-shard hit/miss/occupancy rows, in shard order.
    pub fn shard_stats(&self) -> Vec<CacheShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let clock = s.clock.lock();
                CacheShardStats {
                    hits: s.hits.load(Ordering::Relaxed),
                    misses: s.misses.load(Ordering::Relaxed),
                    len: clock.len(),
                    capacity: clock.capacity(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: u32) -> FileId {
        FileId(id)
    }

    #[test]
    fn hits_after_admission() {
        let mut c = BufferCache::new(4);
        assert!(!c.access(f(1), 0));
        assert!(c.access(f(1), 0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut c = BufferCache::new(0);
        assert!(!c.access(f(1), 0));
        assert!(!c.access(f(1), 0));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn evicts_at_capacity() {
        let mut c = BufferCache::new(2);
        c.access(f(1), 0);
        c.access(f(1), 1);
        c.access(f(1), 2); // evicts one of the first two
        assert_eq!(c.len(), 2);
        assert!(c.contains(f(1), 2));
    }

    #[test]
    fn clock_prefers_evicting_unreferenced() {
        let mut c = BufferCache::new(2);
        c.access(f(1), 0);
        c.access(f(1), 1);
        // Touch page 0 so that its reference bit survives the first sweep.
        assert!(c.access(f(1), 0));
        c.access(f(1), 2);
        // Page 0 was recently referenced; CLOCK gives it a second chance.
        // After the sweep, one unreferenced frame was replaced.
        assert!(c.contains(f(1), 2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn repeated_scan_larger_than_cache_always_misses() {
        let mut c = BufferCache::new(4);
        for round in 0..3 {
            let mut hits = 0;
            for p in 0..8 {
                if c.access(f(1), p) {
                    hits += 1;
                }
            }
            if round > 0 {
                // Sequential flooding defeats CLOCK just as it defeats LRU —
                // this mirrors the paper's full-scan behaviour on a cache
                // smaller than the dataset.
                assert!(hits <= 4, "round {round} had {hits} hits");
            }
        }
    }

    #[test]
    fn evict_file_removes_only_that_file() {
        let mut c = BufferCache::new(8);
        c.access(f(1), 0);
        c.access(f(2), 0);
        c.access(f(2), 1);
        c.evict_file(f(2));
        assert!(c.contains(f(1), 0));
        assert!(!c.contains(f(2), 0));
        assert!(!c.contains(f(2), 1));
        assert_eq!(c.len(), 1);
        // Cache still works after the rebuild.
        assert!(!c.access(f(3), 7));
        assert!(c.access(f(3), 7));
    }

    #[test]
    fn clear_empties() {
        let mut c = BufferCache::new(4);
        c.access(f(1), 0);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.access(f(1), 0));
    }

    /// Replays an access trace against a plain CLOCK and a 1-shard
    /// [`ShardedCache`]; every hit/miss decision must be identical.
    #[test]
    fn one_shard_matches_single_clock() {
        let mut single = BufferCache::new(8);
        let sharded = ShardedCache::new(8, 1);
        // A trace with re-references, capacity pressure, and two files.
        let trace: Vec<(u32, PageNo)> = (0..200)
            .map(|i| ((i % 3) as u32, (i * 7 % 13) as PageNo))
            .collect();
        for &(file, page) in &trace {
            assert_eq!(
                single.access(f(file), page),
                sharded.access(f(file), page),
                "diverged at ({file}, {page})"
            );
        }
        assert_eq!(single.len(), sharded.len());
        let stats = sharded.shard_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].hits + stats[0].misses, trace.len() as u64);
    }

    #[test]
    fn shards_split_capacity_and_count_accesses() {
        let c = ShardedCache::new(10, 4);
        assert_eq!(c.num_shards(), 4);
        assert_eq!(c.capacity(), 10);
        let stats = c.shard_stats();
        assert_eq!(stats.iter().map(|s| s.capacity).sum::<usize>(), 10);
        assert!(stats.iter().all(|s| s.capacity >= 2));
        for p in 0..6 {
            assert!(!c.access(f(1), p));
            assert!(c.access(f(1), p));
        }
        let stats = c.shard_stats();
        assert_eq!(stats.iter().map(|s| s.hits).sum::<u64>(), 6);
        assert_eq!(stats.iter().map(|s| s.misses).sum::<u64>(), 6);
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn shard_count_clamped_to_capacity() {
        let c = ShardedCache::new(2, 16);
        assert_eq!(c.num_shards(), 2);
        // Zero capacity: one disabled shard, every access misses.
        let c = ShardedCache::new(0, 8);
        assert_eq!(c.num_shards(), 1);
        assert!(!c.access(f(1), 0));
        assert!(!c.access(f(1), 0));
        assert!(c.is_empty());
    }

    #[test]
    fn sharded_evict_file_and_clear() {
        let c = ShardedCache::new(32, 4);
        for p in 0..8 {
            c.access(f(1), p);
            c.access(f(2), p);
        }
        c.evict_file(f(1));
        assert!((0..8).all(|p| !c.contains(f(1), p)));
        assert!((0..8).all(|p| c.contains(f(2), p)));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn sharded_concurrent_access_is_safe() {
        let c = std::sync::Arc::new(ShardedCache::new(64, 8));
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let c = c.clone();
                scope.spawn(move || {
                    for i in 0..500u32 {
                        c.access(f(t), i % 37);
                    }
                });
            }
        });
        let stats = c.shard_stats();
        let total: u64 = stats.iter().map(|s| s.hits + s.misses).sum();
        assert_eq!(total, 4 * 500);
        assert!(c.len() <= 64);
    }
}
