//! CLOCK (second-chance) buffer cache.
//!
//! The cache tracks *which* pages are resident; the page bytes themselves are
//! owned by the simulated files. A lookup hit means the access is free; a
//! miss means the device cost model is charged and the page is admitted,
//! possibly evicting another page chosen by the CLOCK hand.
//!
//! CLOCK is the classic database buffer replacement policy: a circular array
//! of frames with reference bits, giving LRU-like behaviour with O(1)
//! amortized eviction and no list surgery on every hit.

use crate::storage::{FileId, PageNo};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PageKey {
    file: FileId,
    page: PageNo,
}

#[derive(Debug)]
struct Frame {
    key: PageKey,
    referenced: bool,
}

/// Fixed-capacity CLOCK cache over `(file, page)` keys.
#[derive(Debug)]
pub struct BufferCache {
    capacity: usize,
    map: HashMap<PageKey, usize>,
    frames: Vec<Frame>,
    hand: usize,
}

impl BufferCache {
    /// Creates a cache holding at most `capacity` pages. A capacity of zero
    /// disables caching entirely (every access misses).
    pub fn new(capacity: usize) -> Self {
        BufferCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            frames: Vec::with_capacity(capacity.min(1 << 20)),
            hand: 0,
        }
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True if no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Marks `(file, page)` as accessed. Returns `true` on a hit.
    /// On a miss the page is admitted (evicting if full).
    pub fn access(&mut self, file: FileId, page: PageNo) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let key = PageKey { file, page };
        if let Some(&idx) = self.map.get(&key) {
            self.frames[idx].referenced = true;
            return true;
        }
        self.admit(key);
        false
    }

    /// True if `(file, page)` is resident, without touching reference bits.
    pub fn contains(&self, file: FileId, page: PageNo) -> bool {
        self.map.contains_key(&PageKey { file, page })
    }

    fn admit(&mut self, key: PageKey) {
        if self.frames.len() < self.capacity {
            self.map.insert(key, self.frames.len());
            self.frames.push(Frame {
                key,
                referenced: true,
            });
            return;
        }
        // CLOCK sweep: clear reference bits until an unreferenced frame is
        // found, then replace it.
        loop {
            let frame = &mut self.frames[self.hand];
            if frame.referenced {
                frame.referenced = false;
                self.hand = (self.hand + 1) % self.frames.len();
            } else {
                self.map.remove(&frame.key);
                frame.key = key;
                frame.referenced = true;
                self.map.insert(key, self.hand);
                self.hand = (self.hand + 1) % self.frames.len();
                return;
            }
        }
    }

    /// Drops all pages belonging to `file` (the file was deleted after a
    /// merge). Eviction here is bookkeeping only — no cost is charged.
    pub fn evict_file(&mut self, file: FileId) {
        if self.frames.is_empty() {
            return;
        }
        // Retain in place, rebuilding the index map.
        let mut kept = Vec::with_capacity(self.frames.len());
        for f in self.frames.drain(..) {
            if f.key.file != file {
                kept.push(f);
            }
        }
        self.frames = kept;
        self.map.clear();
        for (i, f) in self.frames.iter().enumerate() {
            self.map.insert(f.key, i);
        }
        if self.frames.is_empty() {
            self.hand = 0;
        } else {
            self.hand %= self.frames.len();
        }
    }

    /// Empties the cache (used by benchmarks that want cold-cache queries).
    pub fn clear(&mut self) {
        self.map.clear();
        self.frames.clear();
        self.hand = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: u32) -> FileId {
        FileId(id)
    }

    #[test]
    fn hits_after_admission() {
        let mut c = BufferCache::new(4);
        assert!(!c.access(f(1), 0));
        assert!(c.access(f(1), 0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut c = BufferCache::new(0);
        assert!(!c.access(f(1), 0));
        assert!(!c.access(f(1), 0));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn evicts_at_capacity() {
        let mut c = BufferCache::new(2);
        c.access(f(1), 0);
        c.access(f(1), 1);
        c.access(f(1), 2); // evicts one of the first two
        assert_eq!(c.len(), 2);
        assert!(c.contains(f(1), 2));
    }

    #[test]
    fn clock_prefers_evicting_unreferenced() {
        let mut c = BufferCache::new(2);
        c.access(f(1), 0);
        c.access(f(1), 1);
        // Touch page 0 so that its reference bit survives the first sweep.
        assert!(c.access(f(1), 0));
        c.access(f(1), 2);
        // Page 0 was recently referenced; CLOCK gives it a second chance.
        // After the sweep, one unreferenced frame was replaced.
        assert!(c.contains(f(1), 2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn repeated_scan_larger_than_cache_always_misses() {
        let mut c = BufferCache::new(4);
        for round in 0..3 {
            let mut hits = 0;
            for p in 0..8 {
                if c.access(f(1), p) {
                    hits += 1;
                }
            }
            if round > 0 {
                // Sequential flooding defeats CLOCK just as it defeats LRU —
                // this mirrors the paper's full-scan behaviour on a cache
                // smaller than the dataset.
                assert!(hits <= 4, "round {round} had {hits} hits");
            }
        }
    }

    #[test]
    fn evict_file_removes_only_that_file() {
        let mut c = BufferCache::new(8);
        c.access(f(1), 0);
        c.access(f(2), 0);
        c.access(f(2), 1);
        c.evict_file(f(2));
        assert!(c.contains(f(1), 0));
        assert!(!c.contains(f(2), 0));
        assert!(!c.contains(f(2), 1));
        assert_eq!(c.len(), 1);
        // Cache still works after the rebuild.
        assert!(!c.access(f(3), 7));
        assert!(c.access(f(3), 7));
    }

    #[test]
    fn clear_empties() {
        let mut c = BufferCache::new(4);
        c.access(f(1), 0);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.access(f(1), 0));
    }
}
