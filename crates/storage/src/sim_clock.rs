//! Simulated time.
//!
//! The clock is a shared atomic nanosecond counter. Storage and CPU cost
//! charges advance it; benchmarks read it to report "query time (s)" the way
//! the paper does. The model is a single device plus a single CPU: charges
//! from concurrent threads serialize onto the same counter, which matches the
//! single-disk, single-dataset-partition setting of the paper's experiments.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared simulated clock, in nanoseconds.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ns` simulated nanoseconds.
    pub fn advance(&self, ns: u64) {
        if ns > 0 {
            self.nanos.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Current simulated time in nanoseconds.
    pub fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    /// Current simulated time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_nanos() as f64 / 1e9
    }

    /// Resets the clock to zero (benchmarks reuse a dataset across queries).
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Relaxed);
    }
}

/// A scoped stopwatch over a [`SimClock`], for measuring one operation.
#[derive(Debug)]
pub struct SimStopwatch {
    clock: SimClock,
    start: u64,
}

impl SimStopwatch {
    /// Starts measuring.
    pub fn start(clock: &SimClock) -> Self {
        SimStopwatch {
            clock: clock.clone(),
            start: clock.now_nanos(),
        }
    }

    /// Simulated nanoseconds elapsed since `start`.
    pub fn elapsed_nanos(&self) -> u64 {
        self.clock.now_nanos() - self.start
    }

    /// Simulated seconds elapsed since `start`.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_nanos() as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_reads() {
        let c = SimClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(1_500_000_000);
        assert_eq!(c.now_nanos(), 1_500_000_000);
        assert!((c.now_secs() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn zero_advance_is_free() {
        let c = SimClock::new();
        c.advance(0);
        assert_eq!(c.now_nanos(), 0);
    }

    #[test]
    fn stopwatch_measures_deltas() {
        let c = SimClock::new();
        c.advance(100);
        let w = SimStopwatch::start(&c);
        c.advance(250);
        assert_eq!(w.elapsed_nanos(), 250);
    }

    #[test]
    fn clones_share_time() {
        let c = SimClock::new();
        let d = c.clone();
        c.advance(10);
        assert_eq!(d.now_nanos(), 10);
        d.reset();
        assert_eq!(c.now_nanos(), 0);
    }
}
