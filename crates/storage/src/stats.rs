//! I/O and CPU event counters.
//!
//! Counters are atomics so that concurrent readers/writers (merge threads vs
//! ingestion threads) can be accounted without locking. Benchmarks snapshot
//! them before/after an operation; tests assert on them (e.g. "the batched
//! lookup performed zero random reads on the leaf level").

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters, shared by reference.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Page reads that missed the buffer cache and were sequential
    /// continuations of the previous read on the same file.
    pub seq_reads: AtomicU64,
    /// Page reads that missed the buffer cache and required a seek.
    pub rand_reads: AtomicU64,
    /// Page reads satisfied by the buffer cache.
    pub cache_hits: AtomicU64,
    /// Pages written (flush, merge, WAL).
    pub pages_written: AtomicU64,
    /// Bytes read from the simulated device (cache misses only).
    pub bytes_read: AtomicU64,
    /// Bytes written to the simulated device.
    pub bytes_written: AtomicU64,
    /// Bloom filter membership tests performed.
    pub bloom_checks: AtomicU64,
    /// Bloom filter tests that returned "definitely absent".
    pub bloom_negatives: AtomicU64,
    /// Simulated CPU nanoseconds charged.
    pub cpu_ns: AtomicU64,
    /// Wall-clock nanoseconds reads on this device spent waiting in an
    /// [`IoThrottle`](crate::IoThrottle) read bucket (background rebuild
    /// scans).
    pub throttle_wait_ns: AtomicU64,
    /// Wall-clock nanoseconds writes on this device spent waiting in an
    /// [`IoThrottle`](crate::IoThrottle) write bucket (background flush
    /// builds and merge outputs; WAL appends are exempt).
    pub write_throttle_wait_ns: AtomicU64,
    /// Faults injected by an installed [`FaultPlan`](crate::FaultPlan) on
    /// this device (errors, crashes, torn and short writes).
    pub faults_injected: AtomicU64,
    /// Appends damaged by an injected torn or short write.
    pub torn_writes: AtomicU64,
    /// WAL group commits: device appends that each covered one committer
    /// group's page.
    pub wal_groups: AtomicU64,
    /// Log records covered by those group commits
    /// (`wal_grouped_records / wal_groups` = mean group size).
    pub wal_grouped_records: AtomicU64,
    /// Per-page file-table lookups avoided by batched page reads
    /// ([`Storage::page_data_batch`](crate::Storage::page_data_batch) /
    /// [`Storage::read_pages`](crate::Storage::read_pages)): `count - 1`
    /// per batch, versus fetching each page individually.
    pub batched_lookups_saved: AtomicU64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a point-in-time copy of all counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            seq_reads: self.seq_reads.load(Ordering::Relaxed),
            rand_reads: self.rand_reads.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            pages_written: self.pages_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bloom_checks: self.bloom_checks.load(Ordering::Relaxed),
            bloom_negatives: self.bloom_negatives.load(Ordering::Relaxed),
            cpu_ns: self.cpu_ns.load(Ordering::Relaxed),
            throttle_wait_ns: self.throttle_wait_ns.load(Ordering::Relaxed),
            write_throttle_wait_ns: self.write_throttle_wait_ns.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            wal_groups: self.wal_groups.load(Ordering::Relaxed),
            wal_grouped_records: self.wal_grouped_records.load(Ordering::Relaxed),
            batched_lookups_saved: self.batched_lookups_saved.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn add(&self, field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a bloom filter check (and whether it pruned).
    pub fn record_bloom_check(&self, negative: bool) {
        self.add(&self.bloom_checks, 1);
        if negative {
            self.add(&self.bloom_negatives, 1);
        }
    }
}

/// An immutable copy of the counters, with difference support. Field
/// meanings match [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct IoStatsSnapshot {
    pub seq_reads: u64,
    pub rand_reads: u64,
    pub cache_hits: u64,
    pub pages_written: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub bloom_checks: u64,
    pub bloom_negatives: u64,
    pub cpu_ns: u64,
    pub throttle_wait_ns: u64,
    pub write_throttle_wait_ns: u64,
    pub faults_injected: u64,
    pub torn_writes: u64,
    pub wal_groups: u64,
    pub wal_grouped_records: u64,
    pub batched_lookups_saved: u64,
}

impl IoStatsSnapshot {
    /// Total page reads that reached the device.
    pub fn disk_reads(&self) -> u64 {
        self.seq_reads + self.rand_reads
    }

    /// Counter-wise difference `self - earlier` (for measuring one phase).
    pub fn since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            seq_reads: self.seq_reads - earlier.seq_reads,
            rand_reads: self.rand_reads - earlier.rand_reads,
            cache_hits: self.cache_hits - earlier.cache_hits,
            pages_written: self.pages_written - earlier.pages_written,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            bloom_checks: self.bloom_checks - earlier.bloom_checks,
            bloom_negatives: self.bloom_negatives - earlier.bloom_negatives,
            cpu_ns: self.cpu_ns - earlier.cpu_ns,
            throttle_wait_ns: self.throttle_wait_ns - earlier.throttle_wait_ns,
            write_throttle_wait_ns: self.write_throttle_wait_ns - earlier.write_throttle_wait_ns,
            faults_injected: self.faults_injected - earlier.faults_injected,
            torn_writes: self.torn_writes - earlier.torn_writes,
            wal_groups: self.wal_groups - earlier.wal_groups,
            wal_grouped_records: self.wal_grouped_records - earlier.wal_grouped_records,
            batched_lookups_saved: self.batched_lookups_saved - earlier.batched_lookups_saved,
        }
    }

    /// Fraction of page accesses served by the cache.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.disk_reads() + self.cache_hits;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_since() {
        let s = IoStats::new();
        s.add(&s.rand_reads, 3);
        s.add(&s.cache_hits, 1);
        let a = s.snapshot();
        s.add(&s.rand_reads, 2);
        s.add(&s.seq_reads, 5);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.rand_reads, 2);
        assert_eq!(d.seq_reads, 5);
        assert_eq!(d.cache_hits, 0);
        assert_eq!(d.disk_reads(), 7);
    }

    #[test]
    fn hit_ratio() {
        let s = IoStats::new();
        assert_eq!(s.snapshot().cache_hit_ratio(), 0.0);
        s.add(&s.cache_hits, 3);
        s.add(&s.rand_reads, 1);
        assert!((s.snapshot().cache_hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bloom_counters() {
        let s = IoStats::new();
        s.record_bloom_check(true);
        s.record_bloom_check(false);
        let snap = s.snapshot();
        assert_eq!(snap.bloom_checks, 2);
        assert_eq!(snap.bloom_negatives, 1);
    }
}
