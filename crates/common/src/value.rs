//! Typed values and their order-preserving byte encoding.
//!
//! Index keys in the engine are raw byte strings compared with `memcmp`
//! (that is what the B+-tree and LSM layers sort by). To support typed keys —
//! and in particular the paper's composite secondary-index keys
//! `(secondary key, primary key)` — every [`Value`] has a *memcomparable*
//! encoding: for any two values `a`, `b` of the same type,
//! `a < b  ⇔  encode(a) < encode(b)` bytewise, and no encoding is a strict
//! prefix of another encoding of the same type, so concatenated (composite)
//! encodings also compare correctly.
//!
//! Encodings:
//! * `Int(i64)`   → tag `0x01` + 8 bytes big-endian with the sign bit flipped;
//! * `Str(String)`→ tag `0x02` + bytes with `0x00` escaped as `0x00 0xFF`,
//!   terminated by `0x00 0x00` (the standard escape/terminator scheme);
//! * `Null`       → tag `0x00` (sorts before everything).

use crate::error::{Error, Result};
use std::fmt;

/// A typed value stored in a record or used as an index key part.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Absent value; sorts before all other values.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
}

const TAG_NULL: u8 = 0x00;
const TAG_INT: u8 = 0x01;
const TAG_STR: u8 = 0x02;

impl Value {
    /// Appends the memcomparable encoding of `self` to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(TAG_NULL),
            Value::Int(i) => {
                out.push(TAG_INT);
                // Flip the sign bit so that negative numbers sort first.
                out.extend_from_slice(&((*i as u64) ^ (1 << 63)).to_be_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                for &b in s.as_bytes() {
                    if b == 0x00 {
                        out.extend_from_slice(&[0x00, 0xFF]);
                    } else {
                        out.push(b);
                    }
                }
                out.extend_from_slice(&[0x00, 0x00]);
            }
        }
    }

    /// Returns the memcomparable encoding of `self`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Exact length of the encoding produced by [`Value::encode_into`].
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 9,
            Value::Str(s) => 1 + s.bytes().filter(|&b| b == 0).count() + s.len() + 2,
        }
    }

    /// Decodes one value from the front of `buf`, returning it and the number
    /// of bytes consumed.
    pub fn decode_from(buf: &[u8]) -> Result<(Value, usize)> {
        let tag = *buf
            .first()
            .ok_or_else(|| Error::corruption("empty value"))?;
        match tag {
            TAG_NULL => Ok((Value::Null, 1)),
            TAG_INT => {
                if buf.len() < 9 {
                    return Err(Error::corruption("short int encoding"));
                }
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&buf[1..9]);
                let v = (u64::from_be_bytes(raw) ^ (1 << 63)) as i64;
                Ok((Value::Int(v), 9))
            }
            TAG_STR => {
                let mut bytes = Vec::new();
                let mut i = 1;
                loop {
                    match buf.get(i) {
                        None => return Err(Error::corruption("unterminated string")),
                        Some(0x00) => match buf.get(i + 1) {
                            Some(0x00) => {
                                let s = String::from_utf8(bytes)
                                    .map_err(|_| Error::corruption("invalid utf8"))?;
                                return Ok((Value::Str(s), i + 2));
                            }
                            Some(0xFF) => {
                                bytes.push(0x00);
                                i += 2;
                            }
                            _ => return Err(Error::corruption("bad string escape")),
                        },
                        Some(&b) => {
                            bytes.push(b);
                            i += 1;
                        }
                    }
                }
            }
            t => Err(Error::corruption(format!("unknown value tag {t:#x}"))),
        }
    }

    /// Decodes a value that must occupy the whole buffer.
    pub fn decode_exact(buf: &[u8]) -> Result<Value> {
        let (v, n) = Value::decode_from(buf)?;
        if n != buf.len() {
            return Err(Error::corruption("trailing bytes after value"));
        }
        Ok(v)
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Encodes a composite key from value parts (e.g. `(secondary, primary)`).
pub fn encode_composite(parts: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(parts.iter().map(Value::encoded_len).sum());
    for p in parts {
        p.encode_into(&mut out);
    }
    out
}

/// Decodes all value parts of a composite key.
pub fn decode_composite(mut buf: &[u8]) -> Result<Vec<Value>> {
    let mut parts = Vec::new();
    while !buf.is_empty() {
        let (v, n) = Value::decode_from(buf)?;
        parts.push(v);
        buf = &buf[n..];
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let enc = v.encode();
        assert_eq!(enc.len(), v.encoded_len());
        assert_eq!(Value::decode_exact(&enc).unwrap(), v);
    }

    #[test]
    fn roundtrips() {
        roundtrip(Value::Null);
        roundtrip(Value::Int(0));
        roundtrip(Value::Int(i64::MIN));
        roundtrip(Value::Int(i64::MAX));
        roundtrip(Value::Int(-1));
        roundtrip(Value::Str(String::new()));
        roundtrip(Value::Str("hello".into()));
        roundtrip(Value::Str("with\0nul\0bytes".into()));
    }

    #[test]
    fn int_encoding_preserves_order() {
        let vals = [i64::MIN, -1_000_000, -1, 0, 1, 42, 1_000_000, i64::MAX];
        for w in vals.windows(2) {
            assert!(Value::Int(w[0]).encode() < Value::Int(w[1]).encode());
        }
    }

    #[test]
    fn str_encoding_preserves_order() {
        let vals = ["", "a", "a\0", "a\0b", "aa", "ab", "b"];
        for i in 0..vals.len() {
            for j in 0..vals.len() {
                let (a, b) = (Value::Str(vals[i].into()), Value::Str(vals[j].into()));
                assert_eq!(a.encode().cmp(&b.encode()), vals[i].cmp(vals[j]), "{i} {j}");
            }
        }
    }

    #[test]
    fn composite_keys_compare_lexicographically() {
        // (a, 2) < (b, 1) even though 2 > 1.
        let k1 = encode_composite(&[Value::Str("a".into()), Value::Int(2)]);
        let k2 = encode_composite(&[Value::Str("b".into()), Value::Int(1)]);
        assert!(k1 < k2);
        // Same first part: falls through to the second part.
        let k3 = encode_composite(&[Value::Str("a".into()), Value::Int(3)]);
        assert!(k1 < k3);
    }

    #[test]
    fn composite_roundtrip() {
        let parts = vec![Value::Int(7), Value::Str("x\0y".into()), Value::Null];
        let enc = encode_composite(&parts);
        assert_eq!(decode_composite(&enc).unwrap(), parts);
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null.encode() < Value::Int(i64::MIN).encode());
        assert!(Value::Int(i64::MAX).encode() < Value::Str(String::new()).encode());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Value::decode_exact(&[]).is_err());
        assert!(Value::decode_exact(&[0xEE]).is_err());
        assert!(Value::decode_exact(&[TAG_INT, 1, 2]).is_err());
        assert!(Value::decode_exact(&[TAG_STR, b'a']).is_err());
        // Trailing bytes.
        let mut enc = Value::Int(1).encode();
        enc.push(0);
        assert!(Value::decode_exact(&enc).is_err());
    }
}
