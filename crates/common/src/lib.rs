//! Shared foundation types for the `lsm-aux` workspace.
//!
//! This crate hosts everything that the storage, index, and engine layers all
//! need to agree on:
//!
//! * [`value::Value`] — the typed values stored in records, together with an
//!   order-preserving ("memcomparable") byte encoding so that composite index
//!   keys can be compared as raw byte strings;
//! * [`schema::Schema`] and [`schema::Record`] — the minimal row model used by
//!   the engine (the paper's tweets are records of this form);
//! * [`clock::LogicalClock`] — the monotonic per-dataset clock that stands in
//!   for the node-local wall-clock time used by the paper for ingestion
//!   timestamps and component IDs;
//! * [`error::Error`] — the workspace-wide error type.

#![warn(missing_docs)]

pub mod clock;
pub mod error;
pub mod schema;
pub mod value;

pub use clock::{LogicalClock, Timestamp};
pub use error::{Error, Result};
pub use schema::{FieldType, Record, Schema};
pub use value::Value;

/// An encoded, memcomparable key. Keys compare correctly as raw byte strings.
pub type Key = Vec<u8>;

/// An opaque stored value (for the primary index this is the encoded record).
pub type Bytes = Vec<u8>;
