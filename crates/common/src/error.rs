//! Workspace-wide error type.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the storage engine.
///
/// The engine is an embedded library, so errors are deliberately coarse:
/// callers either recover by retrying a transaction ([`Error::TxnAborted`])
/// or they have hit a programming/corruption error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A key was not found where one was required.
    KeyNotFound,
    /// An encoded page, record, or key failed to decode.
    Corruption(String),
    /// The operation conflicts with the schema or dataset configuration.
    InvalidArgument(String),
    /// The transaction was aborted (deadlock avoidance or explicit abort).
    TxnAborted(String),
    /// An index with the given name does not exist.
    NoSuchIndex(String),
    /// The simulated storage layer rejected the request.
    Storage(String),
    /// A transient I/O failure (injected fault or device hiccup): the
    /// operation may succeed if retried. Maintenance runtimes retry these
    /// with backoff instead of poisoning the dataset.
    TransientIo(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::KeyNotFound => write!(f, "key not found"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::TxnAborted(m) => write!(f, "transaction aborted: {m}"),
            Error::NoSuchIndex(m) => write!(f, "no such index: {m}"),
            Error::Storage(m) => write!(f, "storage: {m}"),
            Error::TransientIo(m) => write!(f, "transient i/o: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Convenience constructor for corruption errors.
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Convenience constructor for invalid-argument errors.
    pub fn invalid(msg: impl Into<String>) -> Self {
        Error::InvalidArgument(msg.into())
    }

    /// Convenience constructor for transient I/O errors.
    pub fn transient_io(msg: impl Into<String>) -> Self {
        Error::TransientIo(msg.into())
    }

    /// True for failures that may clear on retry ([`Error::TransientIo`]).
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::TransientIo(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Error::KeyNotFound.to_string(), "key not found");
        assert_eq!(
            Error::corruption("bad page").to_string(),
            "corruption: bad page"
        );
        assert_eq!(Error::invalid("x").to_string(), "invalid argument: x");
    }

    #[test]
    fn transient_classification() {
        assert!(Error::transient_io("flaky disk").is_transient());
        assert!(!Error::Storage("gone".into()).is_transient());
        assert!(!Error::corruption("bad page").is_transient());
        assert_eq!(Error::transient_io("x").to_string(), "transient i/o: x");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::KeyNotFound, Error::KeyNotFound);
        assert_ne!(Error::KeyNotFound, Error::corruption("x"));
    }
}
