//! Monotonic logical clock.
//!
//! The paper timestamps every ingested entry with the node-local wall-clock
//! time and derives component IDs (minTS-maxTS) from those timestamps
//! (Section 3). A real wall clock is non-deterministic and can go backwards;
//! since all that matters is a total order consistent with ingestion order,
//! we use a monotonic logical counter per dataset.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An ingestion timestamp. `0` is reserved as "no timestamp".
pub type Timestamp = u64;

/// Timestamp value meaning "absent"/"unknown".
pub const NO_TIMESTAMP: Timestamp = 0;

/// A shared, monotonically increasing logical clock.
///
/// Cloning is cheap; all clones tick the same underlying counter.
#[derive(Debug, Clone)]
pub struct LogicalClock {
    next: Arc<AtomicU64>,
}

impl Default for LogicalClock {
    fn default() -> Self {
        Self::new()
    }
}

impl LogicalClock {
    /// Creates a clock whose first tick returns `1`.
    pub fn new() -> Self {
        LogicalClock {
            next: Arc::new(AtomicU64::new(1)),
        }
    }

    /// Returns the next timestamp, strictly greater than all previous ones.
    pub fn tick(&self) -> Timestamp {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns the most recently issued timestamp without advancing.
    pub fn now(&self) -> Timestamp {
        self.next.load(Ordering::Relaxed).saturating_sub(1)
    }

    /// Advances the clock to at least `ts` (used during recovery so that new
    /// timestamps stay above everything already durable).
    pub fn advance_to(&self, ts: Timestamp) {
        self.next.fetch_max(ts + 1, Ordering::Relaxed);
    }

    /// Forces the clock so the next tick returns `ts + 1`, going *backwards*
    /// if needed. Only for crash simulation: a restarted process has no
    /// memory of the pre-crash clock, and recovery is responsible for
    /// advancing past everything durable. Ordinary code must use
    /// [`LogicalClock::advance_to`], which never rewinds.
    pub fn reset_for_crash(&self, ts: Timestamp) {
        self.next.store(ts + 1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_increasing() {
        let c = LogicalClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn clones_share_state() {
        let c = LogicalClock::new();
        let d = c.clone();
        let a = c.tick();
        let b = d.tick();
        assert!(b > a);
    }

    #[test]
    fn advance_to_moves_forward_only() {
        let c = LogicalClock::new();
        c.advance_to(100);
        assert_eq!(c.tick(), 101);
        c.advance_to(50); // must not go backwards
        assert!(c.tick() > 101);
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let c = LogicalClock::new();
        let mut handles = vec![];
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.tick()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
    }
}
