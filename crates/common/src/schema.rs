//! Minimal row model: schemas and records.
//!
//! The engine stores *records* in a primary LSM index, keyed by a primary-key
//! field, with secondary indexes defined over other fields (Section 3 of the
//! paper). The paper's experiments use a synthetic tweet schema
//! `(id, user_id, location, creation_time, message)`; this module provides
//! the small general row model those records are expressed in.

use crate::error::{Error, Result};
use crate::value::Value;

/// The type of a record field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldType {
    /// 64-bit signed integer.
    Int,
    /// UTF-8 string.
    Str,
}

impl FieldType {
    fn matches(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (FieldType::Int, Value::Int(_)) | (FieldType::Str, Value::Str(_)) | (_, Value::Null)
        )
    }
}

/// A named, typed field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name (unique within a schema).
    pub name: String,
    /// Field type.
    pub ty: FieldType,
}

/// An ordered collection of fields. Field 0 conventions are decided by the
/// dataset configuration (the engine requires the primary key to be one of
/// the fields, not necessarily the first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<FieldDef>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    ///
    /// # Errors
    /// Returns [`Error::InvalidArgument`] on duplicate field names or an
    /// empty field list.
    pub fn new(fields: Vec<(&str, FieldType)>) -> Result<Self> {
        if fields.is_empty() {
            return Err(Error::invalid("schema must have at least one field"));
        }
        let mut defs = Vec::with_capacity(fields.len());
        for (name, ty) in fields {
            if defs.iter().any(|d: &FieldDef| d.name == name) {
                return Err(Error::invalid(format!("duplicate field name {name:?}")));
            }
            defs.push(FieldDef {
                name: name.to_owned(),
                ty,
            });
        }
        Ok(Schema { fields: defs })
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// The fields, in order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Resolves a field name to its position.
    pub fn field_index(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| Error::invalid(format!("no field named {name:?}")))
    }

    /// Validates that `record` conforms to this schema.
    pub fn check(&self, record: &Record) -> Result<()> {
        if record.values.len() != self.fields.len() {
            return Err(Error::invalid(format!(
                "record arity {} != schema arity {}",
                record.values.len(),
                self.fields.len()
            )));
        }
        for (f, v) in self.fields.iter().zip(&record.values) {
            if !f.ty.matches(v) {
                return Err(Error::invalid(format!(
                    "field {:?} expects {:?}, got {v}",
                    f.name, f.ty
                )));
            }
        }
        Ok(())
    }
}

/// A record (row): one value per schema field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Field values, in schema order.
    pub values: Vec<Value>,
}

impl Record {
    /// Creates a record from values.
    pub fn new(values: Vec<Value>) -> Self {
        Record { values }
    }

    /// Returns the value at `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Serializes the record to bytes (length-prefixed memcomparable values;
    /// the encoding is self-delimiting so no schema is needed to decode).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for v in &self.values {
            v.encode_into(&mut out);
        }
        out
    }

    /// Deserializes a record produced by [`Record::encode`].
    pub fn decode(buf: &[u8]) -> Result<Record> {
        Ok(Record {
            values: crate::value::decode_composite(buf)?,
        })
    }
}

impl From<Vec<Value>> for Record {
    fn from(values: Vec<Value>) -> Self {
        Record { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tweet_schema() -> Schema {
        Schema::new(vec![
            ("id", FieldType::Int),
            ("user_id", FieldType::Int),
            ("location", FieldType::Str),
            ("creation_time", FieldType::Int),
            ("message", FieldType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn schema_construction_and_lookup() {
        let s = tweet_schema();
        assert_eq!(s.arity(), 5);
        assert_eq!(s.field_index("location").unwrap(), 2);
        assert!(s.field_index("nope").is_err());
    }

    #[test]
    fn schema_rejects_duplicates_and_empty() {
        assert!(Schema::new(vec![]).is_err());
        assert!(Schema::new(vec![("a", FieldType::Int), ("a", FieldType::Str)]).is_err());
    }

    #[test]
    fn record_check() {
        let s = tweet_schema();
        let good = Record::new(vec![
            Value::Int(1),
            Value::Int(42),
            Value::Str("CA".into()),
            Value::Int(2015),
            Value::Str("hello".into()),
        ]);
        assert!(s.check(&good).is_ok());

        let wrong_arity = Record::new(vec![Value::Int(1)]);
        assert!(s.check(&wrong_arity).is_err());

        let wrong_type = Record::new(vec![
            Value::Str("x".into()),
            Value::Int(42),
            Value::Str("CA".into()),
            Value::Int(2015),
            Value::Str("hello".into()),
        ]);
        assert!(s.check(&wrong_type).is_err());

        // Nulls are allowed in any field.
        let with_null = Record::new(vec![
            Value::Int(1),
            Value::Null,
            Value::Str("CA".into()),
            Value::Int(2015),
            Value::Str("hello".into()),
        ]);
        assert!(s.check(&with_null).is_ok());
    }

    #[test]
    fn record_roundtrip() {
        let r = Record::new(vec![
            Value::Int(-5),
            Value::Str("with\0nul".into()),
            Value::Null,
        ]);
        assert_eq!(Record::decode(&r.encode()).unwrap(), r);
    }
}
