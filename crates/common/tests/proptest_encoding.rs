//! Property tests: the memcomparable encoding is order-preserving and
//! round-trips, including in composite keys.

use lsm_common::value::{decode_composite, encode_composite};
use lsm_common::Value;
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        ".{0,24}".prop_map(Value::Str),
        // Strings with embedded NULs exercise the escaping.
        proptest::collection::vec(prop_oneof![Just(0u8), 1..=255u8], 0..16)
            .prop_map(|b| Value::Str(String::from_utf8_lossy(&b).into_owned())),
    ]
}

proptest! {
    #[test]
    fn roundtrip(v in arb_value()) {
        let enc = v.encode();
        prop_assert_eq!(enc.len(), v.encoded_len());
        prop_assert_eq!(Value::decode_exact(&enc).unwrap(), v);
    }

    #[test]
    fn order_preserved(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.encode().cmp(&b.encode()), a.cmp(&b));
    }

    #[test]
    fn composite_roundtrip(parts in proptest::collection::vec(arb_value(), 0..4)) {
        let enc = encode_composite(&parts);
        prop_assert_eq!(decode_composite(&enc).unwrap(), parts);
    }

    #[test]
    fn composite_order_preserved(
        a in proptest::collection::vec(arb_value(), 1..3),
        b in proptest::collection::vec(arb_value(), 1..3),
    ) {
        // Lexicographic on parts ⇔ bytewise on encodings, when no vector is
        // a strict prefix of the other (prefix pairs compare by length).
        if a.len() == b.len() {
            prop_assert_eq!(encode_composite(&a).cmp(&encode_composite(&b)), a.cmp(&b));
        }
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Value::decode_exact(&bytes); // must return Err, not panic
        let _ = decode_composite(&bytes);
    }
}
