//! `lsm-sanity` — a line-level static lint over the workspace sources.
//!
//! The engine owns its sync primitives (the vendored `parking_lot` shim) and
//! its fault-injection vocabulary (crash sites, stats counters), so a small
//! purpose-built lint can enforce invariants rustc cannot see:
//!
//! 1. **Sync-shim enforcement** — `std::sync` `Mutex`/`RwLock`/`Condvar` are
//!    forbidden everywhere outside the shim; a raw `std` lock is invisible
//!    to the lock-order deadlock detector (`--cfg lock_order_check`).
//! 2. **`unwrap()`/`expect(` ratchet** — non-test engine code
//!    (`crates/{core,lsm,storage}/src`) may not grow new panic sites. The
//!    committed allowlist (`crates/sanity/allowlist.txt`) freezes existing
//!    debt per file; a count that moves in *either* direction fails, so debt
//!    is burned down explicitly, never grandfathered silently. A site whose
//!    line (or the contiguous comment block directly above it) carries an
//!    `// INVARIANT:` comment is a justified survivor and exempt.
//! 3. **Crash-site cross-check** — every site name probed in engine code
//!    must appear in the torture harness's fault table (so every window has
//!    deterministic crash coverage) and in ARCHITECTURE.md's crash-site
//!    table; and vice versa (no orphaned trigger rows).
//! 4. **Counter parity** — every `AtomicU64` counter of `EngineStats` /
//!    `IoStats` has a same-named field in its `…Snapshot` twin (a missing
//!    field compiles fine and silently never reports), and every
//!    `RuntimeStatsSnapshot` field is documented in docs/OPERATIONS.md.
//! 5. **Guide links** — relative links in ARCHITECTURE.md and
//!    docs/OPERATIONS.md must resolve (absorbed from the CI docs job's old
//!    grep step).
//!
//! All checks are pure functions over a workspace root, so the fixture trees
//! under `tests/fixtures/` exercise each violation class hermetically.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

// Built from pieces so the lint does not flag its own source.
const STD_SYNC_PREFIX: &str = concat!("std::", "sync::");
const FORBIDDEN_SYNC: [&str; 3] = ["Mutex", "RwLock", "Condvar"];
const UNWRAP_PAT: &str = concat!(".unwrap", "()");
const EXPECT_PAT: &str = concat!(".expect", "(");
const INVARIANT_PAT: &str = concat!("// ", "INVARIANT:");

/// Crates whose `src/` trees are "engine code" for the unwrap ratchet and
/// the crash-site scan.
const ENGINE_CRATES: [&str; 3] = ["crates/core", "crates/lsm", "crates/storage"];

/// The operator guides whose relative links must resolve.
const GUIDES: [&str; 2] = ["ARCHITECTURE.md", "docs/OPERATIONS.md"];

/// Root-relative path of the unwrap/expect allowlist.
pub const ALLOWLIST_PATH: &str = "crates/sanity/allowlist.txt";

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-root-relative file.
    pub file: PathBuf,
    /// 1-based line (0 = whole file).
    pub line: usize,
    /// Which check fired (stable kebab-case id).
    pub check: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.check,
            self.message
        )
    }
}

fn violation(
    file: impl Into<PathBuf>,
    line: usize,
    check: &'static str,
    message: impl Into<String>,
) -> Violation {
    Violation {
        file: file.into(),
        line,
        check,
        message: message.into(),
    }
}

/// Runs every check against the workspace at `root`.
pub fn run_all(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    out.extend(check_std_sync(root));
    out.extend(check_unwrap_ratchet(root));
    out.extend(check_crash_sites(root));
    out.extend(check_counter_parity(root));
    out.extend(check_markdown_links(root));
    out
}

// ---------------------------------------------------------------------------
// file walking

/// All `.rs` files under `root/<sub>`, root-relative, sorted. Skips
/// `target/`, hidden dirs, and `fixtures/` (the lint's own seeded-violation
/// trees must not flag the real workspace).
fn rust_files(root: &Path, sub: &str) -> Vec<PathBuf> {
    let mut out = Vec::new();
    walk(&root.join(sub), root, &mut out);
    out.sort();
    out
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(&path, root, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

fn read(root: &Path, rel: &Path) -> Option<String> {
    std::fs::read_to_string(root.join(rel)).ok()
}

/// True for lines that are entirely comment (line, doc, or inner-doc).
fn is_comment_line(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//")
}

/// Iterates non-test lines of a source file: lines inside a `#[cfg(test)]`
/// item (by convention the trailing `mod tests` block) are skipped via
/// brace counting.
fn non_test_lines(src: &str) -> impl Iterator<Item = (usize, &str)> {
    let mut skipping = false;
    let mut pending = false; // saw #[cfg(test)], waiting for the item's `{`
    let mut depth = 0i32;
    src.lines().enumerate().filter_map(move |(i, line)| {
        if !skipping && !pending && line.trim_start().starts_with("#[cfg(test)]") {
            pending = true;
            return None;
        }
        if pending {
            let opens = line.matches('{').count() as i32;
            let closes = line.matches('}').count() as i32;
            if opens > 0 {
                pending = false;
                skipping = true;
                depth = opens - closes;
                if depth <= 0 {
                    skipping = false;
                }
            }
            return None;
        }
        if skipping {
            depth += line.matches('{').count() as i32;
            depth -= line.matches('}').count() as i32;
            if depth <= 0 {
                skipping = false;
            }
            return None;
        }
        Some((i + 1, line))
    })
}

/// The code portion of a line (naive `//` comment strip; good enough for a
/// line lint — URLs inside strings are the only notable false cut, and they
/// only ever *hide* trailing code on that line).
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

// ---------------------------------------------------------------------------
// check 1: std::sync lock ban

fn check_std_sync(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    for sub in ["crates", "examples"] {
        for rel in rust_files(root, sub) {
            let Some(src) = read(root, &rel) else {
                continue;
            };
            for (i, line) in src.lines().enumerate() {
                if is_comment_line(line) {
                    continue;
                }
                let code = code_part(line);
                if !code.contains(STD_SYNC_PREFIX) {
                    continue;
                }
                for prim in FORBIDDEN_SYNC {
                    if code.contains(prim) {
                        out.push(violation(
                            &rel,
                            i + 1,
                            "std-sync",
                            format!(
                                "raw {STD_SYNC_PREFIX}{prim} — use the parking_lot shim so the \
                                 lock participates in lock-order checking"
                            ),
                        ));
                        break;
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// check 2: unwrap/expect ratchet

/// Parses the allowlist: `path<space>count` lines, `#` comments.
fn parse_allowlist(src: &str) -> Vec<(String, usize)> {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (path, count) = l.rsplit_once(char::is_whitespace)?;
            Some((path.trim().to_string(), count.parse().ok()?))
        })
        .collect()
}

/// Unjustified panic-site lines (1-based) in non-test code.
fn panic_sites(src: &str) -> Vec<usize> {
    let lines: Vec<&str> = src.lines().collect();
    non_test_lines(src)
        .filter(|(n, line)| {
            if is_comment_line(line) {
                return false;
            }
            let code = code_part(line);
            if !code.contains(UNWRAP_PAT) && !code.contains(EXPECT_PAT) {
                return false;
            }
            // Justified survivor: the invariant is stated on the line
            // itself or anywhere in the contiguous comment block directly
            // above it (multi-line justifications are common).
            if line.contains(INVARIANT_PAT) {
                return false;
            }
            let mut i = *n - 1; // index of the line above, 0-based
            while i > 0 && is_comment_line(lines[i - 1]) {
                if lines[i - 1].contains(INVARIANT_PAT) {
                    return false;
                }
                i -= 1;
            }
            true
        })
        .map(|(n, _)| n)
        .collect()
}

fn check_unwrap_ratchet(root: &Path) -> Vec<Violation> {
    let allow = read(root, Path::new(ALLOWLIST_PATH))
        .map(|s| parse_allowlist(&s))
        .unwrap_or_default();
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    for krate in ENGINE_CRATES {
        for rel in rust_files(root, &format!("{krate}/src")) {
            let Some(src) = read(root, &rel) else {
                continue;
            };
            let sites = panic_sites(&src);
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            seen.insert(rel_str.clone());
            let allowed = allow
                .iter()
                .find(|(p, _)| *p == rel_str)
                .map(|&(_, n)| n)
                .unwrap_or(0);
            match sites.len().cmp(&allowed) {
                std::cmp::Ordering::Greater => {
                    for &line in &sites[allowed..] {
                        out.push(violation(
                            &rel,
                            line,
                            "unwrap-ratchet",
                            format!(
                                "new {UNWRAP_PAT} / {EXPECT_PAT}… in engine code ({} sites, \
                                 allowlist permits {allowed}): return an Error variant, or \
                                 state the invariant in an `{INVARIANT_PAT} …` comment",
                                sites.len()
                            ),
                        ));
                    }
                }
                std::cmp::Ordering::Less => out.push(violation(
                    &rel,
                    0,
                    "unwrap-ratchet",
                    format!(
                        "debt shrank ({} sites, allowlist says {allowed}) — ratchet \
                         {} down in {ALLOWLIST_PATH} so it cannot grow back",
                        sites.len(),
                        rel_str
                    ),
                )),
                std::cmp::Ordering::Equal => {}
            }
        }
    }
    for (path, _) in &allow {
        if !seen.contains(path) {
            out.push(violation(
                Path::new(ALLOWLIST_PATH),
                0,
                "unwrap-ratchet",
                format!("allowlist names a file that no longer exists: {path}"),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// check 3: crash-site cross-check

/// Extracts double-quoted `snake_case` strings from a line.
fn quoted_names(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find('"') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('"') else { break };
        let name = &after[..end];
        if !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            out.push(name);
        }
        rest = &after[end + 1..];
    }
    out
}

/// Site names probed by engine code: string literals on non-test,
/// non-comment lines that mention `crash_site` / `probe_crash_site` /
/// a `*_SITE` const.
fn engine_sites(root: &Path) -> BTreeSet<(String, PathBuf, usize)> {
    let mut out = BTreeSet::new();
    for krate in ENGINE_CRATES {
        for rel in rust_files(root, &format!("{krate}/src")) {
            let Some(src) = read(root, &rel) else {
                continue;
            };
            for (n, line) in non_test_lines(&src) {
                if is_comment_line(line) {
                    continue;
                }
                let code = code_part(line);
                if !(code.contains("crash_site") || code.contains("_SITE")) {
                    continue;
                }
                for name in quoted_names(code) {
                    out.insert((name.to_string(), rel.clone(), n));
                }
            }
        }
    }
    out
}

fn check_crash_sites(root: &Path) -> Vec<Violation> {
    let engine = engine_sites(root);
    let engine_names: BTreeSet<&str> = engine.iter().map(|(n, _, _)| n.as_str()).collect();

    // Torture's fault table: site("name") trigger constructors.
    let mut torture: BTreeSet<String> = BTreeSet::new();
    let mut torture_locs: Vec<(String, PathBuf, usize)> = Vec::new();
    for rel in rust_files(root, "crates/torture/src") {
        let Some(src) = read(root, &rel) else {
            continue;
        };
        for (n, line) in non_test_lines(&src) {
            if is_comment_line(line) {
                continue;
            }
            let code = code_part(line);
            if let Some(idx) = code.find("site(") {
                for name in quoted_names(&code[idx..]) {
                    torture.insert(name.to_string());
                    torture_locs.push((name.to_string(), rel.clone(), n));
                }
            }
        }
    }

    // ARCHITECTURE.md: any backticked snake_case token counts as documented.
    let arch = read(root, Path::new("ARCHITECTURE.md")).unwrap_or_default();
    let arch_mentions = |name: &str| arch.contains(&format!("`{name}`"));

    let mut out = Vec::new();
    for (name, file, line) in &engine {
        if !torture.contains(name) {
            out.push(violation(
                file,
                *line,
                "crash-site",
                format!(
                    "engine crash site \"{name}\" has no FaultKind trigger in \
                     crates/torture (build_plan's site(\"{name}\") table) — the window \
                     has no deterministic crash coverage"
                ),
            ));
        }
        if !arch_mentions(name) {
            out.push(violation(
                file,
                *line,
                "crash-site",
                format!("engine crash site \"{name}\" is missing from ARCHITECTURE.md's crash-site table"),
            ));
        }
    }
    for (name, file, line) in &torture_locs {
        if !engine_names.contains(name.as_str()) {
            out.push(violation(
                file,
                *line,
                "crash-site",
                format!("torture triggers on site \"{name}\" but no engine code probes it (orphaned fault)"),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// check 4: counter parity

/// Field names of `struct name { … }` in `src` whose type contains `ty`.
fn struct_fields(src: &str, name: &str, ty: &str) -> Vec<String> {
    let mut out = Vec::new();
    let header = format!("struct {name} {{");
    let mut in_struct = false;
    for line in src.lines() {
        let t = line.trim();
        if !in_struct {
            if t.contains(&header) {
                in_struct = true;
            }
            continue;
        }
        if t == "}" {
            break;
        }
        if is_comment_line(t) || t.starts_with('#') {
            continue;
        }
        let Some((field, fty)) = t.trim_start_matches("pub ").split_once(':') else {
            continue;
        };
        if fty.contains(ty) {
            out.push(field.trim().to_string());
        }
    }
    out
}

fn parity(
    root: &Path,
    rel: &str,
    live: (&str, &str),
    snap: (&str, &str),
    out: &mut Vec<Violation>,
) {
    let Some(src) = read(root, Path::new(rel)) else {
        return;
    };
    let live_fields: BTreeSet<String> = struct_fields(&src, live.0, live.1).into_iter().collect();
    let snap_fields: BTreeSet<String> = struct_fields(&src, snap.0, snap.1).into_iter().collect();
    if live_fields.is_empty() {
        return; // struct moved: surfaced by the RuntimeStatsSnapshot check or tests
    }
    for f in live_fields.difference(&snap_fields) {
        out.push(violation(
            Path::new(rel),
            0,
            "counter-parity",
            format!(
                "{}.{f} has no matching field in {} — the counter would silently \
                 never be reported",
                live.0, snap.0
            ),
        ));
    }
    for f in snap_fields.difference(&live_fields) {
        out.push(violation(
            Path::new(rel),
            0,
            "counter-parity",
            format!("{}.{f} has no matching live counter in {}", snap.0, live.0),
        ));
    }
}

fn check_counter_parity(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    parity(
        root,
        "crates/core/src/stats.rs",
        ("EngineStats", "AtomicU64"),
        ("EngineStatsSnapshot", "u64"),
        &mut out,
    );
    parity(
        root,
        "crates/storage/src/stats.rs",
        ("IoStats", "AtomicU64"),
        ("IoStatsSnapshot", "u64"),
        &mut out,
    );
    // Every operator-visible runtime counter must be documented.
    if let Some(sched) = read(root, Path::new("crates/core/src/scheduler.rs")) {
        let ops = read(root, Path::new("docs/OPERATIONS.md")).unwrap_or_default();
        for f in struct_fields(&sched, "RuntimeStatsSnapshot", "") {
            if !ops.contains(&format!("`{f}`")) {
                out.push(violation(
                    Path::new("crates/core/src/scheduler.rs"),
                    0,
                    "counter-parity",
                    format!(
                        "RuntimeStatsSnapshot.{f} is not documented in docs/OPERATIONS.md \
                         (\"Reading RuntimeStatsSnapshot\")"
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// check 5: guide links

fn check_markdown_links(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    for guide in GUIDES {
        let rel = Path::new(guide);
        let Some(src) = read(root, rel) else { continue };
        let base = root.join(rel.parent().unwrap_or(Path::new("")));
        for (i, line) in src.lines().enumerate() {
            let mut rest = line;
            while let Some(idx) = rest.find("](") {
                rest = &rest[idx + 2..];
                let Some(end) = rest.find([')', '#']) else {
                    break;
                };
                let link = &rest[..end];
                rest = &rest[end..];
                if link.is_empty() || link.starts_with("http") {
                    continue;
                }
                if !base.join(link).exists() {
                    out.push(violation(
                        rel,
                        i + 1,
                        "md-link",
                        format!("broken relative link: {link}"),
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parsing() {
        let src = "# comment\ncrates/core/src/a.rs 3\n\ncrates/lsm/src/b.rs\t1\n";
        assert_eq!(
            parse_allowlist(src),
            vec![
                ("crates/core/src/a.rs".into(), 3),
                ("crates/lsm/src/b.rs".into(), 1)
            ]
        );
    }

    #[test]
    fn panic_site_counting_skips_tests_docs_and_invariants() {
        let src = r#"
fn a() {
    x.unwrap();
    y.expect("boom");
    z.unwrap_or(0); // not a panic site
    // INVARIANT: frobbed above, cannot be None
    w.unwrap();
    v.unwrap(); // INVARIANT: same-line justification
    // INVARIANT: a multi-line justification states the invariant first
    // and then elaborates on the following comment lines.
    u.unwrap();
}
/// docs may say .unwrap() freely
#[cfg(test)]
mod tests {
    fn t() {
        q.unwrap();
    }
}
"#
        .replace(".unwrap()", super::UNWRAP_PAT)
        .replace("INVARIANT:", &super::INVARIANT_PAT[3..]);
        assert_eq!(panic_sites(&src).len(), 2);
    }

    #[test]
    fn quoted_name_extraction() {
        assert_eq!(
            quoted_names(r#"ds.crash_site("flush_install")?; x("Not_Snake"); y("ok_2")"#),
            vec!["flush_install", "ok_2"]
        );
    }

    #[test]
    fn struct_field_extraction() {
        let src = "
pub struct Foo {
    /// doc
    pub a: AtomicU64,
    pub b: usize,
    #[allow(missing_docs)]
    pub c: AtomicU64,
}
pub struct Bar {
    pub a: u64,
}
";
        assert_eq!(struct_fields(src, "Foo", "AtomicU64"), vec!["a", "c"]);
        assert_eq!(struct_fields(src, "Bar", "u64"), vec!["a"]);
        assert_eq!(struct_fields(src, "Foo", ""), vec!["a", "b", "c"]);
    }
}
