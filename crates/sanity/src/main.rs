//! `lsm-sanity` binary: runs every workspace lint check and exits nonzero on
//! any violation. Run from anywhere inside the repo (`cargo run -p
//! lsm-sanity`); pass a root explicitly with `--root <path>`.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // Built by cargo: the manifest lives at <root>/crates/sanity.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = workspace_root();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other} (usage: lsm-sanity [--root <path>])");
                return ExitCode::FAILURE;
            }
        }
    }

    let violations = lsm_sanity::run_all(&root);
    if violations.is_empty() {
        println!("lsm-sanity: clean ({})", root.display());
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        println!("{v}");
    }
    eprintln!("lsm-sanity: {} violation(s)", violations.len());
    ExitCode::FAILURE
}
