pub fn one_site(v: Option<u32>) -> u32 {
    v.unwrap()
}
