use std::sync::Mutex;

pub static SLOT: Mutex<u32> = Mutex::new(0);

pub fn fresh_panic(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn probe(ds: &Dataset) {
    ds.crash_site("phantom_window");
}
