pub struct RuntimeStatsSnapshot {
    pub documented: u64,
    pub undocumented_counter: u64,
}
