pub fn build_plan() -> Trigger {
    site("orphan_site")
}
