pub fn build_plan() -> Trigger {
    site("win_a")
}
