use parking_lot::Mutex;

pub struct Counter {
    slot: Mutex<u32>,
}

pub fn get(v: Option<u32>) -> u32 {
    // INVARIANT: callers check `is_some` before calling.
    v.unwrap()
}

pub fn probe(ds: &Dataset) {
    ds.crash_site("win_a");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        Some(1).unwrap();
    }
}
