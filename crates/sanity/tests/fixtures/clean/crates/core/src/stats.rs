pub struct EngineStats {
    pub reads: AtomicU64,
}

pub struct EngineStatsSnapshot {
    pub reads: u64,
}
