pub struct RuntimeStatsSnapshot {
    pub jobs: u64,
}
