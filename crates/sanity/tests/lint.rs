//! End-to-end runs of every lint check against the seeded fixture trees
//! (`tests/fixtures/violations`, `tests/fixtures/clean`) and the real
//! workspace. The fixture directories are invisible to the lint's own
//! walker (it skips any `fixtures/` dir), so the seeded violations can
//! never leak into a real-tree run.

use lsm_sanity::{run_all, Violation};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Asserts exactly one violation of `check` matches `needle`, and returns it.
fn find<'a>(vs: &'a [Violation], check: &str, needle: &str) -> &'a Violation {
    let hits: Vec<&Violation> = vs
        .iter()
        .filter(|v| v.check == check && v.message.contains(needle))
        .collect();
    assert_eq!(
        hits.len(),
        1,
        "expected one [{check}] violation matching {needle:?}, got {hits:#?}\nall: {vs:#?}"
    );
    hits[0]
}

#[test]
fn violations_fixture_flags_every_class() {
    let vs = run_all(&fixture("violations"));

    // 1. Raw std lock in engine code, with the offending line pinpointed.
    let v = find(&vs, "std-sync", "Mutex");
    assert_eq!(v.file, Path::new("crates/core/src/lib.rs"));
    assert_eq!(v.line, 1);

    // 2a. A fresh unwrap beyond the (absent) allowlist entry.
    let v = find(&vs, "unwrap-ratchet", "allowlist permits 0");
    assert_eq!(v.file, Path::new("crates/core/src/lib.rs"));
    assert_eq!(v.line, 6);
    // 2b. Debt that shrank without ratcheting the allowlist down.
    find(&vs, "unwrap-ratchet", "debt shrank");
    // 2c. An allowlist entry whose file no longer exists.
    find(&vs, "unwrap-ratchet", "no longer exists");

    // 3a. Engine crash site with no torture trigger…
    find(&vs, "crash-site", "no FaultKind trigger");
    // 3b. …and missing from the architecture guide's table.
    find(&vs, "crash-site", "missing from ARCHITECTURE.md");
    // 3c. Torture trigger nothing probes.
    find(&vs, "crash-site", "orphaned fault");

    // 4a. Live AtomicU64 counter with no snapshot twin.
    find(&vs, "counter-parity", "EngineStats.writes");
    // 4b. Runtime snapshot field nobody documented.
    find(
        &vs,
        "counter-parity",
        "RuntimeStatsSnapshot.undocumented_counter",
    );

    // 5. Broken relative link in a guide.
    let v = find(&vs, "md-link", "does-not-exist.md");
    assert_eq!(v.file, Path::new("ARCHITECTURE.md"));
}

#[test]
fn violations_fixture_has_no_unexpected_findings() {
    // Every violation in the seeded tree is one we planted: 10 in total.
    let vs = run_all(&fixture("violations"));
    assert_eq!(vs.len(), 10, "{vs:#?}");
}

#[test]
fn clean_fixture_passes() {
    let vs = run_all(&fixture("clean"));
    assert!(
        vs.is_empty(),
        "clean fixture should have no findings: {vs:#?}"
    );
}

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let vs = run_all(root);
    assert!(vs.is_empty(), "workspace must stay lint-clean: {vs:#?}");
}
