//! Leaf-page codecs: the plain slotted format plus two opt-in compressed
//! encodings — prefix and columnar — unified behind [`LeafView`].
//!
//! The prefix format shares each key's common prefix with its predecessor
//! (LevelDB-style) and keeps a **restart point** every `restart_interval`
//! entries where the full key is stored, so in-page search stays
//! logarithmic: binary search over the restart keys, then a short linear
//! decode inside one restart block.
//!
//! ```text
//! Prefix leaf:  [base_ordinal | FLAG  u64][count u16][restart_interval u16]
//!               [restart slot u32 × ceil(count / restart_interval)]
//!               heap, per entry:
//!                 at a restart:  [klen varint][key][vlen varint][value]
//!                 otherwise:     [shared varint][suffix_len varint][suffix]
//!                                [vlen varint][value]
//! ```
//!
//! The columnar format splits each page into two in-page strips: a key
//! strip (same delta/restart scheme as the prefix format, but keys only)
//! followed by a value strip, with per-restart offsets into both. In-page
//! search, key iteration and index-only scans touch **only the key strip**
//! — value bytes are never decoded until a caller asks for entry `idx`'s
//! value, and then they come out as one contiguous page slice (the
//! zero-copy fetch path pins the page and hands that slice on):
//!
//! ```text
//! Columnar leaf: [base_ordinal | CFLAG  u64][count u16][restart_interval u16]
//!                [key_strip_len u32]
//!                [key restart slot u32 × R][value restart slot u32 × R]
//!                key strip, per entry:
//!                  at a restart:  [klen varint][key]
//!                  otherwise:     [shared varint][suffix_len varint][suffix]
//!                value strip, per entry: [vlen varint][value]
//!                (R = ceil(count / restart_interval))
//! ```
//!
//! Bits 63/62 of the base-ordinal word distinguish the three encodings
//! (63 → prefix, 62 → columnar, neither → plain), so a reader detects the
//! format per page and mixed-encoding trees (old components plus new
//! flushes) need no migration. Plain pages are written byte-for-byte as
//! before; ordinals never approach `2^62`.

use crate::encoding::{get_slice, get_varint, put_slice, put_varint, slice_len, varint_len};
use crate::page::{LeafPage, LeafPageBuilder};
use lsm_common::{Error, Result};
use lsm_storage::LeafEncoding;
use std::borrow::Cow;

/// Bit 63 of the base-ordinal word marks a prefix-compressed leaf.
const PREFIX_FLAG: u64 = 1 << 63;

/// Bit 62 of the base-ordinal word marks a columnar leaf.
const COLUMNAR_FLAG: u64 = 1 << 62;

/// Prefix-leaf header: flagged base_ordinal (8) + count (2) + interval (2).
const PREFIX_HEADER: usize = 12;

/// Columnar-leaf header: flagged base_ordinal (8) + count (2) +
/// interval (2) + key-strip length (4).
const COLUMNAR_HEADER: usize = 16;

/// Default entries between restart points. Small enough that the linear
/// decode after the restart binary search stays short, large enough that
/// the per-restart slot + full key overhead amortizes well.
pub const DEFAULT_RESTART_INTERVAL: u16 = 16;

fn shared_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// Builds a prefix-compressed leaf page incrementally, respecting a
/// page-size budget. Mirrors [`LeafPageBuilder`]'s API.
#[derive(Debug)]
pub struct PrefixLeafPageBuilder {
    page_size: usize,
    base_ordinal: u64,
    restart_interval: u16,
    /// Heap offsets of the restart entries.
    restarts: Vec<u32>,
    heap: Vec<u8>,
    count: usize,
    first_key: Option<Vec<u8>>,
    last_key: Option<Vec<u8>>,
}

impl PrefixLeafPageBuilder {
    /// Creates a builder for a leaf whose first entry has global ordinal
    /// `base_ordinal`, with the default restart interval.
    pub fn new(page_size: usize, base_ordinal: u64) -> Self {
        Self::with_restart_interval(page_size, base_ordinal, DEFAULT_RESTART_INTERVAL)
    }

    /// Like [`PrefixLeafPageBuilder::new`] with an explicit restart
    /// interval (≥ 1); exposed for codec tests.
    pub fn with_restart_interval(page_size: usize, base_ordinal: u64, interval: u16) -> Self {
        PrefixLeafPageBuilder {
            page_size,
            base_ordinal,
            restart_interval: interval.max(1),
            restarts: Vec::new(),
            heap: Vec::new(),
            count: 0,
            first_key: None,
            last_key: None,
        }
    }

    /// Bytes the page would occupy if finished now.
    pub fn current_size(&self) -> usize {
        PREFIX_HEADER + self.restarts.len() * 4 + self.heap.len()
    }

    /// Encoded heap cost of appending `(key, value)` next, plus the restart
    /// slot if the entry would start a new restart block.
    fn entry_cost(&self, key: &[u8], value: &[u8]) -> usize {
        if self.count.is_multiple_of(self.restart_interval as usize) {
            4 + slice_len(key) + slice_len(value)
        } else {
            // INVARIANT: a non-restart entry always has a predecessor.
            let shared = shared_prefix_len(key, self.last_key.as_deref().unwrap());
            varint_len(shared as u64)
                + varint_len((key.len() - shared) as u64)
                + (key.len() - shared)
                + slice_len(value)
        }
    }

    /// True if `(key, value)` fits in the remaining budget.
    pub fn fits(&self, key: &[u8], value: &[u8]) -> bool {
        self.current_size() + self.entry_cost(key, value) <= self.page_size
    }

    /// True if no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of entries added.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Appends an entry. Keys must arrive in strictly ascending order;
    /// callers are responsible for ordering, the builder only debug-asserts.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if !self.fits(key, value) && !self.is_empty() {
            return Err(Error::Storage("leaf page overflow".into()));
        }
        debug_assert!(
            self.last_key.as_deref().is_none_or(|lk| lk < key),
            "keys must be strictly ascending"
        );
        if self.heap.len() > u32::MAX as usize {
            return Err(Error::Storage("page offset overflow".into()));
        }
        if self.count.is_multiple_of(self.restart_interval as usize) {
            self.restarts.push(self.heap.len() as u32);
            put_slice(&mut self.heap, key);
        } else {
            // INVARIANT: non-restart entries always follow a predecessor.
            let shared = shared_prefix_len(key, self.last_key.as_deref().unwrap());
            put_varint(&mut self.heap, shared as u64);
            put_varint(&mut self.heap, (key.len() - shared) as u64);
            self.heap.extend_from_slice(&key[shared..]);
        }
        put_slice(&mut self.heap, value);
        self.count += 1;
        if self.first_key.is_none() {
            self.first_key = Some(key.to_vec());
        }
        self.last_key = Some(key.to_vec());
        Ok(())
    }

    /// First key in the page (None if empty).
    pub fn first_key(&self) -> Option<&[u8]> {
        self.first_key.as_deref()
    }

    /// Serializes the page.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.current_size());
        out.extend_from_slice(&(self.base_ordinal | PREFIX_FLAG).to_le_bytes());
        out.extend_from_slice(&(self.count as u16).to_le_bytes());
        out.extend_from_slice(&self.restart_interval.to_le_bytes());
        for r in &self.restarts {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&self.heap);
        out
    }
}

/// Read-only view over a serialized prefix-compressed leaf page.
#[derive(Debug, Clone, Copy)]
pub struct PrefixLeafPage<'a> {
    data: &'a [u8],
    count: usize,
    base_ordinal: u64,
    restart_interval: usize,
    num_restarts: usize,
}

impl<'a> PrefixLeafPage<'a> {
    /// Parses the page header.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        if data.len() < PREFIX_HEADER {
            return Err(Error::corruption("prefix leaf page too short"));
        }
        let word = u64::from_le_bytes(data[0..8].try_into().unwrap());
        if word & PREFIX_FLAG == 0 {
            return Err(Error::corruption("not a prefix-compressed leaf"));
        }
        let count = u16::from_le_bytes(data[8..10].try_into().unwrap()) as usize;
        let restart_interval = u16::from_le_bytes(data[10..12].try_into().unwrap()) as usize;
        if restart_interval == 0 {
            return Err(Error::corruption("prefix leaf restart interval is zero"));
        }
        let num_restarts = count.div_ceil(restart_interval);
        if data.len() < PREFIX_HEADER + num_restarts * 4 {
            return Err(Error::corruption("prefix leaf restart array out of bounds"));
        }
        Ok(PrefixLeafPage {
            data,
            count,
            base_ordinal: word & !PREFIX_FLAG,
            restart_interval,
            num_restarts,
        })
    }

    /// Number of entries.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Global ordinal of entry 0.
    pub fn base_ordinal(&self) -> u64 {
        self.base_ordinal
    }

    fn heap(&self) -> &'a [u8] {
        &self.data[PREFIX_HEADER + self.num_restarts * 4..]
    }

    fn restart_offset(&self, r: usize) -> usize {
        let off = PREFIX_HEADER + r * 4;
        u32::from_le_bytes(self.data[off..off + 4].try_into().unwrap()) as usize
    }

    /// Full key of restart point `r`, borrowed straight from the heap.
    fn restart_key(&self, r: usize) -> Result<&'a [u8]> {
        let rest = self
            .heap()
            .get(self.restart_offset(r)..)
            .ok_or_else(|| Error::corruption("prefix leaf restart offset out of bounds"))?;
        Ok(get_slice(rest)?.0)
    }

    /// Decodes entries of restart block `r` from its start, calling `visit`
    /// with `(index, key, value)` until it returns `false` or the block
    /// ends. The key buffer is reused across iterations.
    fn walk_block(
        &self,
        r: usize,
        mut visit: impl FnMut(usize, &[u8], &'a [u8]) -> bool,
    ) -> Result<()> {
        let heap = self.heap();
        let mut pos = self.restart_offset(r);
        let start = r * self.restart_interval;
        let end = (start + self.restart_interval).min(self.count);
        let mut key: Vec<u8> = Vec::new();
        for i in start..end {
            let rest = heap
                .get(pos..)
                .ok_or_else(|| Error::corruption("prefix leaf entry out of bounds"))?;
            let value: &'a [u8];
            if i == start {
                let (k, n) = get_slice(rest)?;
                key.clear();
                key.extend_from_slice(k);
                let (v, m) = get_slice(&rest[n..])?;
                value = v;
                pos += n + m;
            } else {
                let (shared, a) = get_varint(rest)?;
                let (suffix_len, b) = get_varint(&rest[a..])?;
                let (shared, suffix_len) = (shared as usize, suffix_len as usize);
                if shared > key.len() || rest.len() < a + b + suffix_len {
                    return Err(Error::corruption("prefix leaf delta out of bounds"));
                }
                key.truncate(shared);
                key.extend_from_slice(&rest[a + b..a + b + suffix_len]);
                let (v, m) = get_slice(&rest[a + b + suffix_len..])?;
                value = v;
                pos += a + b + suffix_len + m;
            }
            if !visit(i, &key, value) {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Returns the entry at `idx` (panics on out-of-bounds index). The key
    /// is owned for non-restart entries (reconstructed from deltas).
    pub fn entry(&self, idx: usize) -> Result<(Cow<'a, [u8]>, &'a [u8])> {
        assert!(idx < self.count, "leaf index out of bounds");
        let r = idx / self.restart_interval;
        if idx.is_multiple_of(self.restart_interval) {
            // Restart entries borrow straight from the page.
            let rest = self
                .heap()
                .get(self.restart_offset(r)..)
                .ok_or_else(|| Error::corruption("prefix leaf restart offset out of bounds"))?;
            let (k, n) = get_slice(rest)?;
            let (v, _) = get_slice(&rest[n..])?;
            return Ok((Cow::Borrowed(k), v));
        }
        let mut out: Option<(Vec<u8>, &'a [u8])> = None;
        self.walk_block(r, |i, k, v| {
            if i == idx {
                out = Some((k.to_vec(), v));
                false
            } else {
                true
            }
        })?;
        let (k, v) = out.ok_or_else(|| Error::corruption("prefix leaf entry missing"))?;
        Ok((Cow::Owned(k), v))
    }

    /// Key of the entry at `idx`.
    pub fn key(&self, idx: usize) -> Result<Cow<'a, [u8]>> {
        Ok(self.entry(idx)?.0)
    }

    /// First key (None if the page is empty).
    pub fn first_key(&self) -> Result<Option<Cow<'a, [u8]>>> {
        if self.count == 0 {
            return Ok(None);
        }
        Ok(Some(self.key(0)?))
    }

    /// Last key (None if the page is empty).
    pub fn last_key(&self) -> Result<Option<Cow<'a, [u8]>>> {
        if self.count == 0 {
            return Ok(None);
        }
        Ok(Some(self.key(self.count - 1)?))
    }

    /// Binary search for `key`: restart-array binary search, then a linear
    /// decode inside one restart block. Returns the same `Ok(idx)` /
    /// `Err(insertion_point)` values as [`LeafPage::search`] on the same
    /// entries; `cmps` counts key comparisons for CPU cost accounting.
    pub fn search(&self, key: &[u8]) -> Result<(std::result::Result<usize, usize>, u32)> {
        let mut cmps = 0u32;
        if self.count == 0 {
            return Ok((Err(0), cmps));
        }
        // Find the last restart whose key is <= `key` (block that could
        // contain it). If even restart 0 is greater, the answer is Err(0).
        let mut lo = 0usize;
        let mut hi = self.num_restarts;
        while lo < hi {
            let mid = (lo + hi) / 2;
            cmps += 1;
            if self.restart_key(mid)? <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let Some(r) = lo.checked_sub(1) else {
            return Ok((Err(0), cmps));
        };
        let mut result = Err((r * self.restart_interval + self.restart_interval).min(self.count));
        self.walk_block(r, |i, k, _| {
            cmps += 1;
            match k.cmp(key) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => {
                    result = Ok(i);
                    false
                }
                std::cmp::Ordering::Greater => {
                    result = Err(i);
                    false
                }
            }
        })?;
        Ok((result, cmps))
    }
}

/// Builds a columnar leaf page incrementally, respecting a page-size
/// budget. Mirrors [`LeafPageBuilder`]'s API; keys and values accumulate
/// in separate strips so the finished page keeps them apart.
#[derive(Debug)]
pub struct ColumnarLeafPageBuilder {
    page_size: usize,
    base_ordinal: u64,
    restart_interval: u16,
    /// Key-strip offsets of the restart entries.
    key_restarts: Vec<u32>,
    /// Value-strip offsets of the restart entries.
    value_restarts: Vec<u32>,
    key_strip: Vec<u8>,
    value_strip: Vec<u8>,
    count: usize,
    first_key: Option<Vec<u8>>,
    last_key: Option<Vec<u8>>,
}

impl ColumnarLeafPageBuilder {
    /// Creates a builder for a leaf whose first entry has global ordinal
    /// `base_ordinal`, with the default restart interval.
    pub fn new(page_size: usize, base_ordinal: u64) -> Self {
        Self::with_restart_interval(page_size, base_ordinal, DEFAULT_RESTART_INTERVAL)
    }

    /// Like [`ColumnarLeafPageBuilder::new`] with an explicit restart
    /// interval (≥ 1); exposed for codec tests.
    pub fn with_restart_interval(page_size: usize, base_ordinal: u64, interval: u16) -> Self {
        ColumnarLeafPageBuilder {
            page_size,
            base_ordinal,
            restart_interval: interval.max(1),
            key_restarts: Vec::new(),
            value_restarts: Vec::new(),
            key_strip: Vec::new(),
            value_strip: Vec::new(),
            count: 0,
            first_key: None,
            last_key: None,
        }
    }

    /// Bytes the page would occupy if finished now.
    pub fn current_size(&self) -> usize {
        COLUMNAR_HEADER
            + self.key_restarts.len() * 8
            + self.key_strip.len()
            + self.value_strip.len()
    }

    /// Encoded cost of appending `(key, value)` next, plus both restart
    /// slots if the entry would start a new restart block.
    fn entry_cost(&self, key: &[u8], value: &[u8]) -> usize {
        if self.count.is_multiple_of(self.restart_interval as usize) {
            8 + slice_len(key) + slice_len(value)
        } else {
            // INVARIANT: a non-restart entry always has a predecessor.
            let shared = shared_prefix_len(key, self.last_key.as_deref().unwrap());
            varint_len(shared as u64)
                + varint_len((key.len() - shared) as u64)
                + (key.len() - shared)
                + slice_len(value)
        }
    }

    /// True if `(key, value)` fits in the remaining budget.
    pub fn fits(&self, key: &[u8], value: &[u8]) -> bool {
        self.current_size() + self.entry_cost(key, value) <= self.page_size
    }

    /// True if no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of entries added.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Appends an entry. Keys must arrive in strictly ascending order;
    /// callers are responsible for ordering, the builder only debug-asserts.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if !self.fits(key, value) && !self.is_empty() {
            return Err(Error::Storage("leaf page overflow".into()));
        }
        debug_assert!(
            self.last_key.as_deref().is_none_or(|lk| lk < key),
            "keys must be strictly ascending"
        );
        if self.key_strip.len() > u32::MAX as usize || self.value_strip.len() > u32::MAX as usize {
            return Err(Error::Storage("page offset overflow".into()));
        }
        if self.count.is_multiple_of(self.restart_interval as usize) {
            self.key_restarts.push(self.key_strip.len() as u32);
            self.value_restarts.push(self.value_strip.len() as u32);
            put_slice(&mut self.key_strip, key);
        } else {
            // INVARIANT: non-restart entries always follow a predecessor.
            let shared = shared_prefix_len(key, self.last_key.as_deref().unwrap());
            put_varint(&mut self.key_strip, shared as u64);
            put_varint(&mut self.key_strip, (key.len() - shared) as u64);
            self.key_strip.extend_from_slice(&key[shared..]);
        }
        put_slice(&mut self.value_strip, value);
        self.count += 1;
        if self.first_key.is_none() {
            self.first_key = Some(key.to_vec());
        }
        self.last_key = Some(key.to_vec());
        Ok(())
    }

    /// First key in the page (None if empty).
    pub fn first_key(&self) -> Option<&[u8]> {
        self.first_key.as_deref()
    }

    /// Serializes the page: header, both restart arrays, key strip, then
    /// value strip.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.current_size());
        out.extend_from_slice(&(self.base_ordinal | COLUMNAR_FLAG).to_le_bytes());
        out.extend_from_slice(&(self.count as u16).to_le_bytes());
        out.extend_from_slice(&self.restart_interval.to_le_bytes());
        out.extend_from_slice(&(self.key_strip.len() as u32).to_le_bytes());
        for r in &self.key_restarts {
            out.extend_from_slice(&r.to_le_bytes());
        }
        for r in &self.value_restarts {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&self.key_strip);
        out.extend_from_slice(&self.value_strip);
        out
    }
}

/// Read-only view over a serialized columnar leaf page. Key-side methods
/// ([`ColumnarLeafPage::search`], [`ColumnarLeafPage::key`], the key walk)
/// read only the key strip; the value strip is touched exclusively by
/// [`ColumnarLeafPage::value`].
#[derive(Debug, Clone, Copy)]
pub struct ColumnarLeafPage<'a> {
    data: &'a [u8],
    count: usize,
    base_ordinal: u64,
    restart_interval: usize,
    num_restarts: usize,
    key_strip_len: usize,
}

impl<'a> ColumnarLeafPage<'a> {
    /// Parses the page header.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        if data.len() < COLUMNAR_HEADER {
            return Err(Error::corruption("columnar leaf page too short"));
        }
        let word = u64::from_le_bytes(data[0..8].try_into().unwrap());
        if word & COLUMNAR_FLAG == 0 || word & PREFIX_FLAG != 0 {
            return Err(Error::corruption("not a columnar leaf"));
        }
        let count = u16::from_le_bytes(data[8..10].try_into().unwrap()) as usize;
        let restart_interval = u16::from_le_bytes(data[10..12].try_into().unwrap()) as usize;
        if restart_interval == 0 {
            return Err(Error::corruption("columnar leaf restart interval is zero"));
        }
        let key_strip_len = u32::from_le_bytes(data[12..16].try_into().unwrap()) as usize;
        let num_restarts = count.div_ceil(restart_interval);
        if data.len() < COLUMNAR_HEADER + num_restarts * 8 + key_strip_len {
            return Err(Error::corruption("columnar leaf strips out of bounds"));
        }
        Ok(ColumnarLeafPage {
            data,
            count,
            base_ordinal: word & !COLUMNAR_FLAG,
            restart_interval,
            num_restarts,
            key_strip_len,
        })
    }

    /// Number of entries.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Global ordinal of entry 0.
    pub fn base_ordinal(&self) -> u64 {
        self.base_ordinal
    }

    fn key_strip(&self) -> &'a [u8] {
        let start = COLUMNAR_HEADER + self.num_restarts * 8;
        &self.data[start..start + self.key_strip_len]
    }

    fn value_strip(&self) -> &'a [u8] {
        &self.data[COLUMNAR_HEADER + self.num_restarts * 8 + self.key_strip_len..]
    }

    fn key_restart_offset(&self, r: usize) -> usize {
        let off = COLUMNAR_HEADER + r * 4;
        u32::from_le_bytes(self.data[off..off + 4].try_into().unwrap()) as usize
    }

    fn value_restart_offset(&self, r: usize) -> usize {
        let off = COLUMNAR_HEADER + (self.num_restarts + r) * 4;
        u32::from_le_bytes(self.data[off..off + 4].try_into().unwrap()) as usize
    }

    /// Full key of restart point `r`, borrowed straight from the key strip.
    fn restart_key(&self, r: usize) -> Result<&'a [u8]> {
        let rest = self
            .key_strip()
            .get(self.key_restart_offset(r)..)
            .ok_or_else(|| Error::corruption("columnar leaf restart offset out of bounds"))?;
        Ok(get_slice(rest)?.0)
    }

    /// Decodes the keys of restart block `r` from its start, calling
    /// `visit` with `(index, key)` until it returns `false` or the block
    /// ends. Never reads the value strip; the key buffer is reused.
    fn walk_keys(&self, r: usize, mut visit: impl FnMut(usize, &[u8]) -> bool) -> Result<()> {
        let strip = self.key_strip();
        let mut pos = self.key_restart_offset(r);
        let start = r * self.restart_interval;
        let end = (start + self.restart_interval).min(self.count);
        let mut key: Vec<u8> = Vec::new();
        for i in start..end {
            let rest = strip
                .get(pos..)
                .ok_or_else(|| Error::corruption("columnar leaf key out of bounds"))?;
            if i == start {
                let (k, n) = get_slice(rest)?;
                key.clear();
                key.extend_from_slice(k);
                pos += n;
            } else {
                let (shared, a) = get_varint(rest)?;
                let (suffix_len, b) = get_varint(&rest[a..])?;
                let (shared, suffix_len) = (shared as usize, suffix_len as usize);
                if shared > key.len() || rest.len() < a + b + suffix_len {
                    return Err(Error::corruption("columnar leaf key delta out of bounds"));
                }
                key.truncate(shared);
                key.extend_from_slice(&rest[a + b..a + b + suffix_len]);
                pos += a + b + suffix_len;
            }
            if !visit(i, &key) {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Value of the entry at `idx`, borrowed contiguously from the value
    /// strip. Seeks from the nearest value restart, skipping at most
    /// `restart_interval - 1` varint-length headers — key bytes are never
    /// touched.
    pub fn value(&self, idx: usize) -> Result<&'a [u8]> {
        assert!(idx < self.count, "leaf index out of bounds");
        let r = idx / self.restart_interval;
        let strip = self.value_strip();
        let mut pos = self.value_restart_offset(r);
        for _ in r * self.restart_interval..idx {
            let rest = strip
                .get(pos..)
                .ok_or_else(|| Error::corruption("columnar leaf value out of bounds"))?;
            let (v, n) = get_slice(rest)?;
            let _ = v;
            pos += n;
        }
        let rest = strip
            .get(pos..)
            .ok_or_else(|| Error::corruption("columnar leaf value out of bounds"))?;
        Ok(get_slice(rest)?.0)
    }

    /// Returns the entry at `idx` (panics on out-of-bounds index). The key
    /// is owned for non-restart entries (reconstructed from deltas); the
    /// value is always one borrowed slice.
    pub fn entry(&self, idx: usize) -> Result<(Cow<'a, [u8]>, &'a [u8])> {
        Ok((self.key(idx)?, self.value(idx)?))
    }

    /// Key of the entry at `idx`; never reads the value strip.
    pub fn key(&self, idx: usize) -> Result<Cow<'a, [u8]>> {
        assert!(idx < self.count, "leaf index out of bounds");
        let r = idx / self.restart_interval;
        if idx.is_multiple_of(self.restart_interval) {
            return Ok(Cow::Borrowed(self.restart_key(r)?));
        }
        let mut out: Option<Vec<u8>> = None;
        self.walk_keys(r, |i, k| {
            if i == idx {
                out = Some(k.to_vec());
                false
            } else {
                true
            }
        })?;
        let k = out.ok_or_else(|| Error::corruption("columnar leaf key missing"))?;
        Ok(Cow::Owned(k))
    }

    /// First key (None if the page is empty).
    pub fn first_key(&self) -> Result<Option<Cow<'a, [u8]>>> {
        if self.count == 0 {
            return Ok(None);
        }
        Ok(Some(self.key(0)?))
    }

    /// Last key (None if the page is empty).
    pub fn last_key(&self) -> Result<Option<Cow<'a, [u8]>>> {
        if self.count == 0 {
            return Ok(None);
        }
        Ok(Some(self.key(self.count - 1)?))
    }

    /// Binary search for `key` over the key strip only: restart-array
    /// binary search, then a linear key decode inside one restart block.
    /// Returns the same `Ok(idx)` / `Err(insertion_point)` values as
    /// [`LeafPage::search`] on the same entries; `cmps` counts key
    /// comparisons for CPU cost accounting.
    pub fn search(&self, key: &[u8]) -> Result<(std::result::Result<usize, usize>, u32)> {
        let mut cmps = 0u32;
        if self.count == 0 {
            return Ok((Err(0), cmps));
        }
        let mut lo = 0usize;
        let mut hi = self.num_restarts;
        while lo < hi {
            let mid = (lo + hi) / 2;
            cmps += 1;
            if self.restart_key(mid)? <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let Some(r) = lo.checked_sub(1) else {
            return Ok((Err(0), cmps));
        };
        let mut result = Err((r * self.restart_interval + self.restart_interval).min(self.count));
        self.walk_keys(r, |i, k| {
            cmps += 1;
            match k.cmp(key) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => {
                    result = Ok(i);
                    false
                }
                std::cmp::Ordering::Greater => {
                    result = Err(i);
                    false
                }
            }
        })?;
        Ok((result, cmps))
    }
}

/// Read-only view over a leaf page of any encoding. All read paths go
/// through this, so plain, prefix-compressed and columnar leaves can
/// coexist in one tree (and one LSM component stack).
#[derive(Debug, Clone, Copy)]
pub enum LeafView<'a> {
    /// The original slotted format.
    Plain(LeafPage<'a>),
    /// The prefix-compressed format.
    Prefix(PrefixLeafPage<'a>),
    /// The columnar strip format.
    Columnar(ColumnarLeafPage<'a>),
}

impl<'a> LeafView<'a> {
    /// Detects the encoding from the header flag bits and parses the page.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        if data.len() < 8 {
            return Err(Error::corruption("leaf page too short"));
        }
        let word = u64::from_le_bytes(data[0..8].try_into().unwrap());
        if word & PREFIX_FLAG != 0 {
            Ok(LeafView::Prefix(PrefixLeafPage::parse(data)?))
        } else if word & COLUMNAR_FLAG != 0 {
            Ok(LeafView::Columnar(ColumnarLeafPage::parse(data)?))
        } else {
            Ok(LeafView::Plain(LeafPage::parse(data)?))
        }
    }

    /// Number of entries.
    pub fn count(&self) -> usize {
        match self {
            LeafView::Plain(p) => p.count(),
            LeafView::Prefix(p) => p.count(),
            LeafView::Columnar(p) => p.count(),
        }
    }

    /// Global ordinal of entry 0.
    pub fn base_ordinal(&self) -> u64 {
        match self {
            LeafView::Plain(p) => p.base_ordinal(),
            LeafView::Prefix(p) => p.base_ordinal(),
            LeafView::Columnar(p) => p.base_ordinal(),
        }
    }

    /// Returns the entry at `idx` (panics on out-of-bounds index). Keys
    /// borrow from the page where the encoding allows and are reconstructed
    /// (owned) otherwise; values always borrow.
    pub fn entry(&self, idx: usize) -> Result<(Cow<'a, [u8]>, &'a [u8])> {
        match self {
            LeafView::Plain(p) => {
                let (k, v) = p.entry(idx)?;
                Ok((Cow::Borrowed(k), v))
            }
            LeafView::Prefix(p) => p.entry(idx),
            LeafView::Columnar(p) => p.entry(idx),
        }
    }

    /// Key of the entry at `idx`. For columnar pages this reads only the
    /// key strip — index-only consumers never touch value bytes.
    pub fn key(&self, idx: usize) -> Result<Cow<'a, [u8]>> {
        match self {
            LeafView::Columnar(p) => p.key(idx),
            _ => Ok(self.entry(idx)?.0),
        }
    }

    /// First key (None if the page is empty).
    pub fn first_key(&self) -> Result<Option<Cow<'a, [u8]>>> {
        match self {
            LeafView::Plain(p) => Ok(p.first_key()?.map(Cow::Borrowed)),
            LeafView::Prefix(p) => p.first_key(),
            LeafView::Columnar(p) => p.first_key(),
        }
    }

    /// Last key (None if the page is empty).
    pub fn last_key(&self) -> Result<Option<Cow<'a, [u8]>>> {
        match self {
            LeafView::Plain(p) => Ok(p.last_key()?.map(Cow::Borrowed)),
            LeafView::Prefix(p) => p.last_key(),
            LeafView::Columnar(p) => p.last_key(),
        }
    }

    /// In-page search for `key`; every encoding returns identical
    /// `Ok(idx)` / `Err(insertion_point)` values. Prefix and columnar
    /// pages search restart keys then one block; columnar never reads
    /// its value strip.
    pub fn search(&self, key: &[u8]) -> Result<(std::result::Result<usize, usize>, u32)> {
        match self {
            LeafView::Plain(p) => p.search(key),
            LeafView::Prefix(p) => p.search(key),
            LeafView::Columnar(p) => p.search(key),
        }
    }

    /// Exponential (galloping) search from `from` — see
    /// [`LeafPage::exponential_search`]. All encodings run the identical
    /// gallop over the decoded keys, so results agree exactly.
    pub fn exponential_search(
        &self,
        key: &[u8],
        from: usize,
    ) -> Result<(std::result::Result<usize, usize>, u32)> {
        match self {
            LeafView::Plain(p) => p.exponential_search(key, from),
            LeafView::Prefix(p) => gallop(key, from, p.count(), |i| p.key(i)),
            LeafView::Columnar(p) => gallop(key, from, p.count(), |i| p.key(i)),
        }
    }
}

/// The shared gallop-then-binary-search used by the compressed encodings:
/// identical probe sequence to [`LeafPage::exponential_search`], expressed
/// over a key accessor so prefix and columnar pages agree exactly.
fn gallop<'a>(
    key: &[u8],
    from: usize,
    n: usize,
    key_at: impl Fn(usize) -> Result<Cow<'a, [u8]>>,
) -> Result<(std::result::Result<usize, usize>, u32)> {
    let mut cmps = 0u32;
    if from >= n {
        return Ok((Err(n), cmps));
    }
    let mut step = 1usize;
    let mut prev = from;
    let mut bound = from;
    loop {
        cmps += 1;
        match key_at(bound)?.as_ref().cmp(key) {
            std::cmp::Ordering::Less => {
                prev = bound + 1;
                if bound == n - 1 {
                    return Ok((Err(n), cmps));
                }
                bound = (bound + step).min(n - 1);
                step *= 2;
            }
            std::cmp::Ordering::Equal => return Ok((Ok(bound), cmps)),
            std::cmp::Ordering::Greater => break,
        }
    }
    let mut lo = prev;
    let mut hi = bound;
    while lo < hi {
        let mid = (lo + hi) / 2;
        cmps += 1;
        match key_at(mid)?.as_ref().cmp(key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok((Ok(mid), cmps)),
        }
    }
    Ok((Err(lo), cmps))
}

/// A leaf builder of either encoding, dispatched once per tree from
/// [`lsm_storage::StorageOptions::leaf_encoding`]. Plain stays byte-for-byte
/// identical to what [`LeafPageBuilder`] always wrote.
#[derive(Debug)]
pub enum AnyLeafBuilder {
    /// The original slotted format.
    Plain(LeafPageBuilder),
    /// The prefix-compressed format.
    Prefix(PrefixLeafPageBuilder),
    /// The columnar strip format.
    Columnar(ColumnarLeafPageBuilder),
}

impl AnyLeafBuilder {
    /// Creates a builder emitting `encoding` for a leaf whose first entry
    /// has global ordinal `base_ordinal`.
    pub fn new(encoding: LeafEncoding, page_size: usize, base_ordinal: u64) -> Self {
        match encoding {
            LeafEncoding::Plain => {
                AnyLeafBuilder::Plain(LeafPageBuilder::new(page_size, base_ordinal))
            }
            LeafEncoding::Prefix => {
                AnyLeafBuilder::Prefix(PrefixLeafPageBuilder::new(page_size, base_ordinal))
            }
            LeafEncoding::Columnar => {
                AnyLeafBuilder::Columnar(ColumnarLeafPageBuilder::new(page_size, base_ordinal))
            }
        }
    }

    /// True if `(key, value)` fits in the remaining budget.
    pub fn fits(&self, key: &[u8], value: &[u8]) -> bool {
        match self {
            AnyLeafBuilder::Plain(b) => b.fits(key, value),
            AnyLeafBuilder::Prefix(b) => b.fits(key, value),
            AnyLeafBuilder::Columnar(b) => b.fits(key, value),
        }
    }

    /// True if no entries have been added.
    pub fn is_empty(&self) -> bool {
        match self {
            AnyLeafBuilder::Plain(b) => b.is_empty(),
            AnyLeafBuilder::Prefix(b) => b.is_empty(),
            AnyLeafBuilder::Columnar(b) => b.is_empty(),
        }
    }

    /// Number of entries added.
    pub fn count(&self) -> usize {
        match self {
            AnyLeafBuilder::Plain(b) => b.count(),
            AnyLeafBuilder::Prefix(b) => b.count(),
            AnyLeafBuilder::Columnar(b) => b.count(),
        }
    }

    /// Appends an entry; keys must arrive strictly ascending.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        match self {
            AnyLeafBuilder::Plain(b) => b.add(key, value),
            AnyLeafBuilder::Prefix(b) => b.add(key, value),
            AnyLeafBuilder::Columnar(b) => b.add(key, value),
        }
    }

    /// First key in the page (None if empty).
    pub fn first_key(&self) -> Option<&[u8]> {
        match self {
            AnyLeafBuilder::Plain(b) => b.first_key(),
            AnyLeafBuilder::Prefix(b) => b.first_key(),
            AnyLeafBuilder::Columnar(b) => b.first_key(),
        }
    }

    /// Serializes the page.
    pub fn finish(self) -> Vec<u8> {
        match self {
            AnyLeafBuilder::Plain(b) => b.finish(),
            AnyLeafBuilder::Prefix(b) => b.finish(),
            AnyLeafBuilder::Columnar(b) => b.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_prefix(entries: &[(&[u8], &[u8])], base: u64, interval: u16) -> Vec<u8> {
        let mut b = PrefixLeafPageBuilder::with_restart_interval(1 << 20, base, interval);
        for (k, v) in entries {
            b.add(k, v).unwrap();
        }
        b.finish()
    }

    #[test]
    fn prefix_roundtrip_and_flag() {
        let data = build_prefix(
            &[
                (b"apple", b"1"),
                (b"applet", b"22"),
                (b"apply", b""),
                (b"banana", b"3"),
            ],
            9,
            2,
        );
        let view = LeafView::parse(&data).unwrap();
        assert!(matches!(view, LeafView::Prefix(_)));
        assert_eq!(view.count(), 4);
        assert_eq!(view.base_ordinal(), 9);
        let expect: [(&[u8], &[u8]); 4] = [
            (b"apple", b"1"),
            (b"applet", b"22"),
            (b"apply", b""),
            (b"banana", b"3"),
        ];
        for (i, (k, v)) in expect.iter().enumerate() {
            let (gk, gv) = view.entry(i).unwrap();
            assert_eq!((gk.as_ref(), gv), (*k, *v), "entry {i}");
        }
        assert_eq!(view.first_key().unwrap().unwrap().as_ref(), b"apple");
        assert_eq!(view.last_key().unwrap().unwrap().as_ref(), b"banana");
    }

    #[test]
    fn prefix_search_matches_plain() {
        let keys: Vec<Vec<u8>> = (0..100u32)
            .map(|i| format!("user{i:05}").into_bytes())
            .collect();
        let entries: Vec<(&[u8], &[u8])> = keys.iter().map(|k| (k.as_slice(), &b"v"[..])).collect();
        let prefix = build_prefix(&entries, 0, 7);
        let mut plain_b = LeafPageBuilder::new(1 << 20, 0);
        for (k, v) in &entries {
            plain_b.add(k, v).unwrap();
        }
        let plain_data = plain_b.finish();
        let pv = LeafView::parse(&prefix).unwrap();
        let lv = LeafView::parse(&plain_data).unwrap();
        for probe in [
            "user00000",
            "user00050",
            "user00099",
            "user00049x",
            "a",
            "zzz",
        ] {
            let (a, _) = pv.search(probe.as_bytes()).unwrap();
            let (b, _) = lv.search(probe.as_bytes()).unwrap();
            assert_eq!(a, b, "probe {probe}");
        }
    }

    #[test]
    fn empty_and_single_entry_pages() {
        let empty = PrefixLeafPageBuilder::new(4096, 0).finish();
        let v = LeafView::parse(&empty).unwrap();
        assert_eq!(v.count(), 0);
        assert_eq!(v.search(b"x").unwrap().0, Err(0));
        assert!(v.first_key().unwrap().is_none());

        let one = build_prefix(&[(b"k", b"v")], 3, 16);
        let v = LeafView::parse(&one).unwrap();
        assert_eq!(v.count(), 1);
        assert_eq!(v.entry(0).unwrap().0.as_ref(), b"k");
        assert_eq!(v.search(b"k").unwrap().0, Ok(0));
        assert_eq!(v.search(b"j").unwrap().0, Err(0));
        assert_eq!(v.search(b"l").unwrap().0, Err(1));
    }

    #[test]
    fn prefix_compresses_shared_prefixes() {
        let keys: Vec<Vec<u8>> = (0..64u32)
            .map(|i| format!("tweet/2019-07-15/user-{i:010}").into_bytes())
            .collect();
        let entries: Vec<(&[u8], &[u8])> = keys.iter().map(|k| (k.as_slice(), &b"v"[..])).collect();
        let prefix = build_prefix(&entries, 0, 16);
        let mut plain_b = LeafPageBuilder::new(1 << 20, 0);
        for (k, v) in &entries {
            plain_b.add(k, v).unwrap();
        }
        let plain = plain_b.finish();
        assert!(
            prefix.len() < plain.len() * 3 / 4,
            "prefix {} vs plain {}",
            prefix.len(),
            plain.len()
        );
    }

    #[test]
    fn plain_builder_output_unchanged_through_any_builder() {
        let mut any = AnyLeafBuilder::new(LeafEncoding::Plain, 4096, 5);
        let mut plain = LeafPageBuilder::new(4096, 5);
        for (k, v) in [(&b"a"[..], &b"1"[..]), (b"bb", b"22"), (b"ccc", b"")] {
            any.add(k, v).unwrap();
            plain.add(k, v).unwrap();
        }
        assert_eq!(any.finish(), plain.finish());
    }

    fn build_columnar(entries: &[(&[u8], &[u8])], base: u64, interval: u16) -> Vec<u8> {
        let mut b = ColumnarLeafPageBuilder::with_restart_interval(1 << 20, base, interval);
        for (k, v) in entries {
            b.add(k, v).unwrap();
        }
        b.finish()
    }

    #[test]
    fn columnar_roundtrip_and_flag() {
        let entries: [(&[u8], &[u8]); 4] = [
            (b"apple", b"1"),
            (b"applet", b"22"),
            (b"apply", b""),
            (b"banana", b"3"),
        ];
        let data = build_columnar(&entries, 9, 2);
        let view = LeafView::parse(&data).unwrap();
        assert!(matches!(view, LeafView::Columnar(_)));
        assert_eq!(view.count(), 4);
        assert_eq!(view.base_ordinal(), 9);
        for (i, (k, v)) in entries.iter().enumerate() {
            let (gk, gv) = view.entry(i).unwrap();
            assert_eq!((gk.as_ref(), gv), (*k, *v), "entry {i}");
            assert_eq!(view.key(i).unwrap().as_ref(), *k, "key {i}");
        }
        assert_eq!(view.first_key().unwrap().unwrap().as_ref(), b"apple");
        assert_eq!(view.last_key().unwrap().unwrap().as_ref(), b"banana");
    }

    #[test]
    fn columnar_search_matches_plain() {
        let keys: Vec<Vec<u8>> = (0..100u32)
            .map(|i| format!("user{i:05}").into_bytes())
            .collect();
        let entries: Vec<(&[u8], &[u8])> = keys.iter().map(|k| (k.as_slice(), &b"v"[..])).collect();
        let columnar = build_columnar(&entries, 0, 7);
        let mut plain_b = LeafPageBuilder::new(1 << 20, 0);
        for (k, v) in &entries {
            plain_b.add(k, v).unwrap();
        }
        let plain_data = plain_b.finish();
        let cv = LeafView::parse(&columnar).unwrap();
        let lv = LeafView::parse(&plain_data).unwrap();
        for probe in [
            "user00000",
            "user00050",
            "user00099",
            "user00049x",
            "a",
            "zzz",
        ] {
            let (a, _) = cv.search(probe.as_bytes()).unwrap();
            let (b, _) = lv.search(probe.as_bytes()).unwrap();
            assert_eq!(a, b, "search probe {probe}");
            for from in [0usize, 3, 50, 99] {
                let (a, _) = cv.exponential_search(probe.as_bytes(), from).unwrap();
                let (b, _) = lv.exponential_search(probe.as_bytes(), from).unwrap();
                assert_eq!(a, b, "gallop probe {probe} from {from}");
            }
        }
    }

    #[test]
    fn columnar_empty_and_single_entry_pages() {
        let empty = ColumnarLeafPageBuilder::new(4096, 0).finish();
        let v = LeafView::parse(&empty).unwrap();
        assert_eq!(v.count(), 0);
        assert_eq!(v.search(b"x").unwrap().0, Err(0));
        assert!(v.first_key().unwrap().is_none());

        let one = build_columnar(&[(b"k", b"v")], 3, 16);
        let v = LeafView::parse(&one).unwrap();
        assert_eq!(v.count(), 1);
        assert_eq!(v.entry(0).unwrap().0.as_ref(), b"k");
        assert_eq!(v.search(b"k").unwrap().0, Ok(0));
        assert_eq!(v.search(b"j").unwrap().0, Err(0));
        assert_eq!(v.search(b"l").unwrap().0, Err(1));
    }

    #[test]
    fn columnar_compresses_shared_prefixes() {
        let keys: Vec<Vec<u8>> = (0..64u32)
            .map(|i| format!("tweet/2019-07-15/user-{i:010}").into_bytes())
            .collect();
        let entries: Vec<(&[u8], &[u8])> = keys.iter().map(|k| (k.as_slice(), &b"v"[..])).collect();
        let columnar = build_columnar(&entries, 0, 16);
        let mut plain_b = LeafPageBuilder::new(1 << 20, 0);
        for (k, v) in &entries {
            plain_b.add(k, v).unwrap();
        }
        let plain = plain_b.finish();
        assert!(
            columnar.len() < plain.len() * 3 / 4,
            "columnar {} vs plain {}",
            columnar.len(),
            plain.len()
        );
    }

    #[test]
    fn columnar_parse_rejects_corruption() {
        assert!(ColumnarLeafPage::parse(&[0; 8]).is_err());
        // Plain and prefix pages handed to the columnar parser.
        let plain = LeafPageBuilder::new(4096, 0).finish();
        assert!(ColumnarLeafPage::parse(&plain).is_err());
        let prefix = PrefixLeafPageBuilder::new(4096, 0).finish();
        assert!(ColumnarLeafPage::parse(&prefix).is_err());
        // Count implies more restart slots than the page holds.
        let mut bad = (COLUMNAR_FLAG).to_le_bytes().to_vec();
        bad.extend_from_slice(&u16::MAX.to_le_bytes());
        bad.extend_from_slice(&1u16.to_le_bytes());
        bad.extend_from_slice(&0u32.to_le_bytes());
        assert!(ColumnarLeafPage::parse(&bad).is_err());
        // Zero restart interval.
        let mut zero = (COLUMNAR_FLAG).to_le_bytes().to_vec();
        zero.extend_from_slice(&0u16.to_le_bytes());
        zero.extend_from_slice(&0u16.to_le_bytes());
        zero.extend_from_slice(&0u32.to_le_bytes());
        assert!(ColumnarLeafPage::parse(&zero).is_err());
        // Key strip length runs past the page.
        let mut long = (COLUMNAR_FLAG).to_le_bytes().to_vec();
        long.extend_from_slice(&0u16.to_le_bytes());
        long.extend_from_slice(&1u16.to_le_bytes());
        long.extend_from_slice(&64u32.to_le_bytes());
        assert!(ColumnarLeafPage::parse(&long).is_err());
    }

    #[test]
    fn prefix_parse_rejects_corruption() {
        assert!(PrefixLeafPage::parse(&[0; 4]).is_err());
        // Plain page handed to the prefix parser.
        let plain = LeafPageBuilder::new(4096, 0).finish();
        assert!(PrefixLeafPage::parse(&plain).is_err());
        // Count implies more restart slots than the page holds.
        let mut bad = (PREFIX_FLAG).to_le_bytes().to_vec();
        bad.extend_from_slice(&u16::MAX.to_le_bytes());
        bad.extend_from_slice(&1u16.to_le_bytes());
        assert!(PrefixLeafPage::parse(&bad).is_err());
        // Zero restart interval.
        let mut zero = (PREFIX_FLAG).to_le_bytes().to_vec();
        zero.extend_from_slice(&0u16.to_le_bytes());
        zero.extend_from_slice(&0u16.to_le_bytes());
        assert!(PrefixLeafPage::parse(&zero).is_err());
    }
}
