//! Bulk loader for immutable B+-tree components.
//!
//! LSM disk components are always produced whole — by a flush of a memory
//! component or by a merge of existing components — so the tree is built
//! bottom-up from a sorted entry stream: leaves are packed and written first
//! (contiguously, so range scans read pages sequentially), then each internal
//! level, then a metadata page last.

use crate::encoding::put_slice;
use crate::leaf::AnyLeafBuilder;
use crate::page::InternalPageBuilder;
use crate::tree::{BTree, TreeMeta, META_MAGIC};
use lsm_common::{Error, Result};
use lsm_storage::{FileId, LeafEncoding, Storage};
use std::sync::Arc;

/// Streaming bulk loader. Feed strictly ascending keys via [`BTreeBuilder::add`],
/// then call [`BTreeBuilder::finish`].
///
/// Leaves are emitted in the encoding the storage was configured with
/// ([`lsm_storage::StorageOptions::leaf_encoding`]); internal pages and the
/// metadata page are encoding-independent.
pub struct BTreeBuilder {
    storage: Arc<Storage>,
    file: FileId,
    page_size: usize,
    encoding: LeafEncoding,
    leaf: AnyLeafBuilder,
    /// `(first_key, page_no)` of each completed leaf, for the router levels.
    leaf_index: Vec<(Vec<u8>, u32)>,
    next_page: u32,
    num_entries: u64,
    min_key: Option<Vec<u8>>,
    max_key: Option<Vec<u8>>,
    last_key: Option<Vec<u8>>,
}

impl BTreeBuilder {
    /// Starts building a tree in a fresh file of `storage`.
    pub fn new(storage: Arc<Storage>) -> Self {
        let file = storage.create_file();
        let page_size = storage.page_size();
        let encoding = storage.leaf_encoding();
        BTreeBuilder {
            storage,
            file,
            page_size,
            encoding,
            leaf: AnyLeafBuilder::new(encoding, page_size, 0),
            leaf_index: Vec::new(),
            next_page: 0,
            num_entries: 0,
            min_key: None,
            max_key: None,
            last_key: None,
        }
    }

    /// Appends an entry. Keys must be strictly ascending.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if let Some(last) = &self.last_key {
            if key <= last.as_slice() {
                return Err(Error::invalid(format!(
                    "bulk load keys must be strictly ascending ({:02x?} after {:02x?})",
                    key, last
                )));
            }
        }
        if !self.leaf.fits(key, value) {
            if self.leaf.is_empty() {
                return Err(Error::invalid("entry larger than page size"));
            }
            self.flush_leaf()?;
        }
        self.leaf.add(key, value)?;
        self.num_entries += 1;
        if self.min_key.is_none() {
            self.min_key = Some(key.to_vec());
        }
        self.max_key = Some(key.to_vec());
        self.last_key = Some(key.to_vec());
        Ok(())
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// The ordinal position the *next* added entry will receive. Merge
    /// repair (Section 4.4, Figure 7) records this per entry so it can set
    /// bitmap bits after validation.
    pub fn next_ordinal(&self) -> u64 {
        self.num_entries
    }

    fn flush_leaf(&mut self) -> Result<()> {
        let first = self
            .leaf
            .first_key()
            .expect("flush_leaf on empty leaf")
            .to_vec();
        let next_base = self.leaf.count() as u64 + self.leaf_base();
        let page = std::mem::replace(
            &mut self.leaf,
            AnyLeafBuilder::new(self.encoding, self.page_size, next_base),
        );
        let data = page.finish();
        let page_no = self.storage.append_page(self.file, &data)?;
        debug_assert_eq!(page_no, self.next_page);
        self.leaf_index.push((first, self.next_page));
        self.next_page += 1;
        Ok(())
    }

    fn leaf_base(&self) -> u64 {
        // Entries in completed leaves = total added minus those in the open leaf.
        self.num_entries - self.leaf.count() as u64
    }

    /// Finalizes the tree and returns a reader over it.
    pub fn finish(mut self) -> Result<BTree> {
        if !self.leaf.is_empty() {
            self.flush_leaf()?;
        }
        let num_leaves = self.next_page;

        // Build router levels bottom-up until a single root remains.
        let mut level: Vec<(Vec<u8>, u32)> = self.leaf_index.clone();
        let mut height: u32 = if num_leaves > 0 { 1 } else { 0 };
        let mut root = if num_leaves == 1 { 0 } else { u32::MAX };
        while level.len() > 1 {
            height += 1;
            let mut next_level: Vec<(Vec<u8>, u32)> = Vec::new();
            let mut builder = InternalPageBuilder::new(self.page_size);
            for (key, child) in &level {
                if !builder.fits(key) && !builder.is_empty() {
                    let done =
                        std::mem::replace(&mut builder, InternalPageBuilder::new(self.page_size));
                    let first = done.first_key().unwrap().to_vec();
                    let page_no = self.storage.append_page(self.file, &done.finish())?;
                    next_level.push((first, page_no));
                }
                builder.add(key, *child)?;
            }
            let first = builder.first_key().unwrap().to_vec();
            let page_no = self.storage.append_page(self.file, &builder.finish())?;
            next_level.push((first, page_no));
            if next_level.len() == 1 {
                root = next_level[0].1;
            }
            level = next_level;
        }

        let meta = TreeMeta {
            root,
            height,
            num_leaves,
            num_entries: self.num_entries,
            min_key: self.min_key,
            max_key: self.max_key,
        };
        let mut meta_page = Vec::new();
        meta_page.extend_from_slice(&META_MAGIC.to_le_bytes());
        meta_page.extend_from_slice(&meta.root.to_le_bytes());
        meta_page.extend_from_slice(&meta.height.to_le_bytes());
        meta_page.extend_from_slice(&meta.num_leaves.to_le_bytes());
        meta_page.extend_from_slice(&meta.num_entries.to_le_bytes());
        put_slice(&mut meta_page, meta.min_key.as_deref().unwrap_or(b""));
        put_slice(&mut meta_page, meta.max_key.as_deref().unwrap_or(b""));
        if meta_page.len() > self.page_size {
            return Err(Error::Storage("metadata page overflow".into()));
        }
        self.storage.append_page(self.file, &meta_page)?;

        Ok(BTree::from_parts(self.storage, self.file, meta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_storage::StorageOptions;

    fn storage() -> Arc<Storage> {
        Storage::new(StorageOptions::test())
    }

    fn kv(i: u32) -> (Vec<u8>, Vec<u8>) {
        (
            format!("key{i:08}").into_bytes(),
            format!("value{i}").into_bytes(),
        )
    }

    #[test]
    fn build_empty_tree() {
        let t = BTreeBuilder::new(storage()).finish().unwrap();
        assert_eq!(t.num_entries(), 0);
        assert!(t.search(b"anything").unwrap().is_none());
    }

    #[test]
    fn build_single_entry() {
        let mut b = BTreeBuilder::new(storage());
        b.add(b"k", b"v").unwrap();
        let t = b.finish().unwrap();
        assert_eq!(t.num_entries(), 1);
        let (v, ord) = t.search(b"k").unwrap().unwrap();
        assert_eq!(v, b"v");
        assert_eq!(ord, 0);
        assert!(t.search(b"j").unwrap().is_none());
        assert!(t.search(b"l").unwrap().is_none());
    }

    #[test]
    fn rejects_non_ascending_keys() {
        let mut b = BTreeBuilder::new(storage());
        b.add(b"b", b"1").unwrap();
        assert!(b.add(b"b", b"2").is_err());
        assert!(b.add(b"a", b"3").is_err());
    }

    #[test]
    fn build_multi_level_and_search_all() {
        let s = storage();
        let mut b = BTreeBuilder::new(s);
        let n = 5000u32;
        for i in 0..n {
            let (k, v) = kv(i);
            b.add(&k, &v).unwrap();
        }
        let t = b.finish().unwrap();
        assert_eq!(t.num_entries(), n as u64);
        assert!(
            t.height() >= 2,
            "expected router levels, got {}",
            t.height()
        );
        for i in (0..n).step_by(97) {
            let (k, v) = kv(i);
            let (got, ord) = t.search(&k).unwrap().unwrap();
            assert_eq!(got, v);
            assert_eq!(ord, i as u64);
        }
        assert!(t.search(b"key99999999x").unwrap().is_none());
        assert!(t.search(b"a").unwrap().is_none());
    }

    #[test]
    fn min_max_keys_recorded() {
        let s = storage();
        let mut b = BTreeBuilder::new(s);
        for i in 10..20u32 {
            let (k, v) = kv(i);
            b.add(&k, &v).unwrap();
        }
        let t = b.finish().unwrap();
        assert_eq!(t.min_key().unwrap(), kv(10).0.as_slice());
        assert_eq!(t.max_key().unwrap(), kv(19).0.as_slice());
    }

    #[test]
    fn oversized_entry_rejected() {
        let s = storage();
        let big = vec![0u8; s.page_size() + 1];
        let mut b = BTreeBuilder::new(s);
        assert!(b.add(b"k", &big).is_err());
    }

    #[test]
    fn reopen_matches_built_tree() {
        let s = storage();
        let mut b = BTreeBuilder::new(s.clone());
        for i in 0..500u32 {
            let (k, v) = kv(i);
            b.add(&k, &v).unwrap();
        }
        let built = b.finish().unwrap();
        let reopened = BTree::open(s, built.file()).unwrap();
        assert_eq!(reopened.num_entries(), built.num_entries());
        assert_eq!(reopened.height(), built.height());
        let (k, v) = kv(123);
        assert_eq!(reopened.search(&k).unwrap().unwrap().0, v);
    }
}
