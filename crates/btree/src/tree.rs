//! Read-side of the immutable B+-tree.
//!
//! A [`BTree`] is a handle over a finished component file: it knows the root,
//! height, leaf count, and key range, and provides point search (returning
//! the entry's global ordinal, which bitmaps index by), leaf location for
//! cursors, and range/full scans that read leaves sequentially.

use crate::encoding::get_slice;
use crate::leaf::LeafView;
use crate::page::InternalPage;
use lsm_common::{Error, Result};
use lsm_storage::{FileId, PageNo, PageSlice, Storage, ValueBuf};
use std::ops::Bound;
use std::sync::Arc;

/// Magic number identifying a tree metadata page.
pub const META_MAGIC: u32 = 0x4C53_4D42; // "LSMB"

/// Decoded tree metadata.
#[derive(Debug, Clone)]
pub struct TreeMeta {
    /// Root page (leaf 0 for single-leaf trees; `u32::MAX` when empty).
    pub root: u32,
    /// Levels including the leaf level; 0 for an empty tree.
    pub height: u32,
    /// Number of leaf pages (pages `0..num_leaves`).
    pub num_leaves: u32,
    /// Total entries.
    pub num_entries: u64,
    /// Smallest key, if any.
    pub min_key: Option<Vec<u8>>,
    /// Largest key, if any.
    pub max_key: Option<Vec<u8>>,
}

/// An immutable B+-tree stored in one simulated file.
#[derive(Debug, Clone)]
pub struct BTree {
    storage: Arc<Storage>,
    file: FileId,
    meta: TreeMeta,
}

impl BTree {
    pub(crate) fn from_parts(storage: Arc<Storage>, file: FileId, meta: TreeMeta) -> Self {
        BTree {
            storage,
            file,
            meta,
        }
    }

    /// Opens a tree previously built in `file` (reads the metadata page).
    pub fn open(storage: Arc<Storage>, file: FileId) -> Result<Self> {
        let pages = storage.file_pages(file)?;
        if pages == 0 {
            return Err(Error::corruption("btree file has no pages"));
        }
        let data = storage.read_page(file, pages - 1)?;
        if data.len() < 24 {
            return Err(Error::corruption("metadata page too short"));
        }
        let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
        if magic != META_MAGIC {
            return Err(Error::corruption("bad btree magic"));
        }
        let root = u32::from_le_bytes(data[4..8].try_into().unwrap());
        let height = u32::from_le_bytes(data[8..12].try_into().unwrap());
        let num_leaves = u32::from_le_bytes(data[12..16].try_into().unwrap());
        let num_entries = u64::from_le_bytes(data[16..24].try_into().unwrap());
        let (min_raw, n) = get_slice(&data[24..])?;
        let (max_raw, _) = get_slice(&data[24 + n..])?;
        let (min_key, max_key) = if num_entries == 0 {
            (None, None)
        } else {
            (Some(min_raw.to_vec()), Some(max_raw.to_vec()))
        };
        Ok(BTree {
            storage,
            file,
            meta: TreeMeta {
                root,
                height,
                num_leaves,
                num_entries,
                min_key,
                max_key,
            },
        })
    }

    /// The backing file.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// The storage device this tree lives on.
    pub fn storage(&self) -> &Arc<Storage> {
        &self.storage
    }

    /// Total number of entries.
    pub fn num_entries(&self) -> u64 {
        self.meta.num_entries
    }

    /// Number of leaf pages.
    pub fn num_leaves(&self) -> u32 {
        self.meta.num_leaves
    }

    /// Tree height (leaf level included); 0 when empty.
    pub fn height(&self) -> u32 {
        self.meta.height
    }

    /// Smallest stored key.
    pub fn min_key(&self) -> Option<&[u8]> {
        self.meta.min_key.as_deref()
    }

    /// Largest stored key.
    pub fn max_key(&self) -> Option<&[u8]> {
        self.meta.max_key.as_deref()
    }

    /// Approximate on-disk size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.storage.file_pages(self.file).unwrap_or(0) as u64 * self.storage.page_size() as u64
    }

    fn charge_node(&self, cmps: u32) {
        let cpu = self.storage.cpu();
        self.storage
            .charge_cpu(cpu.btree_node_visit_ns + u64::from(cmps) * cpu.key_cmp_ns);
    }

    /// Descends to the leaf page that would contain `key`.
    /// Returns `None` on an empty tree.
    pub fn locate_leaf(&self, key: &[u8]) -> Result<Option<PageNo>> {
        if self.meta.height == 0 {
            return Ok(None);
        }
        let mut page_no = self.meta.root;
        for _ in 1..self.meta.height {
            let data = self.storage.read_page(self.file, page_no)?;
            let page = InternalPage::parse(&data)?;
            let (_, child, cmps) = page.route(key)?;
            self.charge_node(cmps);
            page_no = child;
        }
        Ok(Some(page_no))
    }

    /// Point lookup. Returns `(value, global ordinal)` if the key exists.
    pub fn search(&self, key: &[u8]) -> Result<Option<(Vec<u8>, u64)>> {
        Ok(self.search_pinned(key)?.map(|(v, ord)| (v.to_vec(), ord)))
    }

    /// Point lookup without copying the value: the returned [`PageSlice`]
    /// pins the cached leaf page and references the value bytes in place.
    /// This is the zero-copy entry point the LSM lookup path uses; plain
    /// [`BTree::search`] copies at the same spot callers always paid.
    pub fn search_pinned(&self, key: &[u8]) -> Result<Option<(PageSlice, u64)>> {
        let Some(leaf_no) = self.locate_leaf(key)? else {
            return Ok(None);
        };
        let data = self.storage.read_page(self.file, leaf_no)?;
        let leaf = LeafView::parse(&data)?;
        let (found, cmps) = leaf.search(key)?;
        self.charge_node(cmps);
        match found {
            Ok(idx) => {
                let (_, v) = leaf.entry(idx)?;
                let ordinal = leaf.base_ordinal() + idx as u64;
                Ok(Some((PageSlice::from_subslice(&data, v), ordinal)))
            }
            Err(_) => Ok(None),
        }
    }

    /// Reads and parses leaf page `leaf_no`, returning the raw page bytes.
    /// Callers re-parse with [`LeafView::parse`]; pages are cheap to parse
    /// (header + slot directory only).
    pub fn read_leaf(&self, leaf_no: PageNo) -> Result<Arc<[u8]>> {
        debug_assert!(leaf_no < self.meta.num_leaves);
        self.storage.read_page(self.file, leaf_no)
    }

    /// The first key stored on leaf page `leaf_no` — a natural partition
    /// boundary: every key on earlier leaves sorts strictly below it.
    /// `None` only for an empty leaf (which the bulk loader never writes).
    pub fn leaf_first_key(&self, leaf_no: PageNo) -> Result<Option<Vec<u8>>> {
        let data = self.read_leaf(leaf_no)?;
        let leaf = LeafView::parse(&data)?;
        Ok(leaf.first_key()?.map(|k| k.into_owned()))
    }

    /// Creates a scan over entries in `[lo, hi]` (bounds on encoded keys).
    pub fn scan(&self, lo: Bound<&[u8]>, hi: Bound<Vec<u8>>) -> Result<BTreeScan> {
        let (start_leaf, start_idx) = match &lo {
            Bound::Unbounded => (0, 0),
            Bound::Included(k) | Bound::Excluded(k) => match self.locate_leaf(k)? {
                None => (0, 0),
                Some(leaf_no) => {
                    let data = self.read_leaf(leaf_no)?;
                    let leaf = LeafView::parse(&data)?;
                    let (found, cmps) = leaf.search(k)?;
                    self.charge_node(cmps);
                    let idx = match (found, &lo) {
                        (Ok(i), Bound::Included(_)) => i,
                        (Ok(i), _) => i + 1,
                        (Err(i), _) => i,
                    };
                    (leaf_no, idx)
                }
            },
        };
        Ok(BTreeScan {
            tree: self.clone(),
            leaf_no: start_leaf,
            idx: start_idx,
            hi,
            done: self.meta.num_leaves == 0,
            next_readahead: start_leaf,
            buffer_start: 0,
            buffer: Vec::new(),
        })
    }

    /// Scans the whole tree in key order.
    pub fn scan_all(&self) -> Result<BTreeScan> {
        self.scan(Bound::Unbounded, Bound::Unbounded)
    }

    /// Deletes the backing file (after the component is dropped by a merge).
    pub fn destroy(&self) -> Result<()> {
        self.storage.delete_file(self.file)
    }
}

/// Streaming scan over a key range. Leaves are contiguous pages, so the
/// underlying reads are sequential.
pub struct BTreeScan {
    tree: BTree,
    leaf_no: PageNo,
    idx: usize,
    hi: Bound<Vec<u8>>,
    done: bool,
    /// First leaf not yet covered by a read-ahead burst.
    next_readahead: PageNo,
    /// Private scan buffer holding the current burst, so interleaved scans
    /// (k-way merges over many components) do not thrash the shared cache.
    buffer_start: PageNo,
    buffer: Vec<Arc<[u8]>>,
}

impl BTreeScan {
    /// Returns the next `(key, value, ordinal)`, or `None` at end of range.
    #[allow(clippy::type_complexity)]
    pub fn next_entry(&mut self) -> Result<Option<(Vec<u8>, Vec<u8>, u64)>> {
        Ok(self
            .next_entry_pinned()?
            .map(|(k, v, ord)| (k, v.into_bytes(), ord)))
    }

    /// Like [`BTreeScan::next_entry`] but the value pins the scan-buffer
    /// page instead of being copied out — the zero-copy scan path.
    #[allow(clippy::type_complexity)]
    pub fn next_entry_pinned(&mut self) -> Result<Option<(Vec<u8>, ValueBuf, u64)>> {
        loop {
            if self.done {
                return Ok(None);
            }
            if self.leaf_no >= self.tree.meta.num_leaves {
                self.done = true;
                return Ok(None);
            }
            // Issue a read-ahead burst so the sequential leaf reads are
            // amortized over one seek (the paper's 4MB read-ahead), and keep
            // the burst in a private buffer so interleaved scans don't
            // re-pay for pages evicted from the shared cache.
            if self.leaf_no >= self.next_readahead {
                let ra = self.tree.storage.readahead_pages();
                let count = ra.min(self.tree.meta.num_leaves - self.leaf_no);
                // One batched call charges the burst AND returns the page
                // handles — no per-page `page_data` re-locking.
                self.buffer = self
                    .tree
                    .storage
                    .read_pages(self.tree.file, self.leaf_no, count)?;
                self.buffer_start = self.leaf_no;
                self.next_readahead = self.leaf_no + count;
            }
            let data = if self.leaf_no >= self.buffer_start
                && ((self.leaf_no - self.buffer_start) as usize) < self.buffer.len()
            {
                self.buffer[(self.leaf_no - self.buffer_start) as usize].clone()
            } else {
                self.tree.read_leaf(self.leaf_no)?
            };
            let leaf = LeafView::parse(&data)?;
            if self.idx >= leaf.count() {
                self.leaf_no += 1;
                self.idx = 0;
                continue;
            }
            let (k, v) = leaf.entry(self.idx)?;
            let within = match &self.hi {
                Bound::Unbounded => true,
                Bound::Included(h) => k.as_ref() <= h.as_slice(),
                Bound::Excluded(h) => k.as_ref() < h.as_slice(),
            };
            if !within {
                self.done = true;
                return Ok(None);
            }
            let ordinal = leaf.base_ordinal() + self.idx as u64;
            self.idx += 1;
            // Streaming cost: one comparison-equivalent per entry.
            self.tree
                .storage
                .charge_cpu(self.tree.storage.cpu().key_cmp_ns);
            let value = ValueBuf::from(PageSlice::from_subslice(&data, v));
            return Ok(Some((k.into_owned(), value, ordinal)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BTreeBuilder;
    use lsm_storage::StorageOptions;

    fn storage() -> Arc<Storage> {
        Storage::new(StorageOptions::test())
    }

    fn build(n: u32) -> BTree {
        let mut b = BTreeBuilder::new(storage());
        for i in 0..n {
            b.add(format!("key{i:08}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn scan_all_returns_everything_in_order() {
        let t = build(3000);
        let mut scan = t.scan_all().unwrap();
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0u64;
        while let Some((k, _, ord)) = scan.next_entry().unwrap() {
            if let Some(p) = &prev {
                assert!(&k > p);
            }
            assert_eq!(ord, count);
            prev = Some(k);
            count += 1;
        }
        assert_eq!(count, 3000);
    }

    #[test]
    fn range_scan_bounds() {
        let t = build(100);
        let lo = b"key00000010".to_vec();
        let hi = b"key00000019".to_vec();
        let mut scan = t.scan(Bound::Included(&lo), Bound::Included(hi)).unwrap();
        let mut keys = Vec::new();
        while let Some((k, _, _)) = scan.next_entry().unwrap() {
            keys.push(String::from_utf8(k).unwrap());
        }
        assert_eq!(keys.len(), 10);
        assert_eq!(keys[0], "key00000010");
        assert_eq!(keys[9], "key00000019");
    }

    #[test]
    fn range_scan_exclusive_and_missing_bounds() {
        let t = build(100);
        let lo = b"key00000010x".to_vec(); // between 10 and 11
        let hi = b"key00000012".to_vec();
        let mut scan = t.scan(Bound::Included(&lo), Bound::Excluded(hi)).unwrap();
        let mut keys = Vec::new();
        while let Some((k, _, _)) = scan.next_entry().unwrap() {
            keys.push(String::from_utf8(k).unwrap());
        }
        assert_eq!(keys, vec!["key00000011"]);
    }

    #[test]
    fn scan_empty_tree() {
        let t = build(0);
        let mut scan = t.scan_all().unwrap();
        assert!(scan.next_entry().unwrap().is_none());
    }

    #[test]
    fn scan_reads_leaves_sequentially() {
        let t = build(3000);
        t.storage().clear_cache();
        let before = t.storage().stats();
        let mut scan = t.scan_all().unwrap();
        while scan.next_entry().unwrap().is_some() {}
        let after = t.storage().stats().since(&before);
        // All leaf reads but the first should be sequential continuations.
        assert!(
            after.seq_reads >= after.rand_reads * 3,
            "seq {} rand {}",
            after.seq_reads,
            after.rand_reads
        );
    }

    #[test]
    fn destroy_frees_file() {
        let t = build(10);
        let file = t.file();
        t.destroy().unwrap();
        assert!(t.storage().read_page(file, 0).is_err());
    }

    #[test]
    fn open_rejects_garbage_file() {
        let s = storage();
        let f = s.create_file();
        s.append_page(f, b"not a btree").unwrap();
        assert!(BTree::open(s, f).is_err());
    }
}
