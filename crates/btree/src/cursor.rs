//! Stateful B+-tree search cursor (Section 3.2, "Stateful B+-tree Lookup").
//!
//! When a batch of sorted primary keys is probed against a component, most
//! consecutive probes land on the same or the next leaf. The cursor
//! remembers the last leaf and position and:
//!
//! * probes within the current leaf using **exponential search** from the
//!   last position (cheap for nearby keys) instead of a full root-to-leaf
//!   descent;
//! * falls back to a root descent only when the probe key leaves the
//!   current leaf's key range.
//!
//! Probe keys must be non-decreasing; this is guaranteed by the sorted fetch
//! lists the engine produces.

use crate::leaf::LeafView;
use crate::tree::BTree;
use lsm_common::Result;
use lsm_storage::{PageNo, PageSlice};

/// A stateful lookup cursor over one [`BTree`].
pub struct StatefulCursor<'t> {
    tree: &'t BTree,
    /// Current leaf and the position of the previous probe within it.
    state: Option<CursorState>,
    /// Statistics: root descents performed.
    pub descents: u64,
    /// Statistics: probes served from the remembered leaf.
    pub leaf_hits: u64,
}

struct CursorState {
    leaf_no: PageNo,
    pos: usize,
    last_key: Vec<u8>,
}

impl<'t> StatefulCursor<'t> {
    /// Creates a cursor with no remembered position.
    pub fn new(tree: &'t BTree) -> Self {
        StatefulCursor {
            tree,
            state: None,
            descents: 0,
            leaf_hits: 0,
        }
    }

    /// Probes `key`, returning `(value, ordinal)` if present.
    ///
    /// Keys across successive calls must be non-decreasing.
    pub fn seek(&mut self, key: &[u8]) -> Result<Option<(Vec<u8>, u64)>> {
        Ok(self.seek_pinned(key)?.map(|(v, ord)| (v.to_vec(), ord)))
    }

    /// Like [`StatefulCursor::seek`] but the value pins the cached leaf
    /// page instead of being copied — the zero-copy batched-probe path.
    pub fn seek_pinned(&mut self, key: &[u8]) -> Result<Option<(PageSlice, u64)>> {
        // Fast path: the remembered leaf still covers `key`.
        if let Some(state) = &self.state {
            if key <= state.last_key.as_slice() {
                self.leaf_hits += 1;
                let leaf_no = state.leaf_no;
                let from = state.pos;
                return self.probe_leaf(leaf_no, key, from, true);
            }
        }
        // Slow path: descend from the root.
        self.descents += 1;
        let Some(leaf_no) = self.tree.locate_leaf(key)? else {
            return Ok(None);
        };
        self.probe_leaf(leaf_no, key, 0, false)
    }

    fn probe_leaf(
        &mut self,
        leaf_no: PageNo,
        key: &[u8],
        from: usize,
        exponential: bool,
    ) -> Result<Option<(PageSlice, u64)>> {
        let data = self.tree.read_leaf(leaf_no)?;
        let leaf = LeafView::parse(&data)?;
        let (found, cmps) = if exponential {
            leaf.exponential_search(key, from)?
        } else {
            leaf.search(key)?
        };
        let storage = self.tree.storage();
        let cpu = storage.cpu();
        storage.charge_cpu(cpu.btree_node_visit_ns + u64::from(cmps) * cpu.key_cmp_ns);

        let pos = match found {
            Ok(i) => i,
            Err(i) => i.min(leaf.count().saturating_sub(1)),
        };
        let last_key = leaf.last_key()?.map(|k| k.into_owned()).unwrap_or_default();
        self.state = Some(CursorState {
            leaf_no,
            pos,
            last_key,
        });
        match found {
            Ok(i) => {
                let (_, v) = leaf.entry(i)?;
                let ordinal = leaf.base_ordinal() + i as u64;
                Ok(Some((PageSlice::from_subslice(&data, v), ordinal)))
            }
            Err(_) => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BTreeBuilder;
    use lsm_storage::{Storage, StorageOptions};

    fn build(n: u32) -> BTree {
        let s = Storage::new(StorageOptions::test());
        let mut b = BTreeBuilder::new(s);
        for i in 0..n {
            b.add(format!("key{i:08}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn seek_finds_every_present_key_in_order() {
        let t = build(2000);
        let mut c = StatefulCursor::new(&t);
        for i in (0..2000u32).step_by(3) {
            let k = format!("key{i:08}");
            let (v, ord) = c.seek(k.as_bytes()).unwrap().unwrap();
            assert_eq!(v, format!("v{i}").as_bytes());
            assert_eq!(ord, i as u64);
        }
    }

    #[test]
    fn seek_misses_absent_keys() {
        let t = build(100);
        let mut c = StatefulCursor::new(&t);
        assert!(c.seek(b"key00000010x").unwrap().is_none());
        // Still finds later keys after a miss.
        assert!(c.seek(b"key00000050").unwrap().is_some());
        assert!(c.seek(b"zzz").unwrap().is_none());
    }

    #[test]
    fn dense_probes_mostly_avoid_descents() {
        let t = build(5000);
        let mut c = StatefulCursor::new(&t);
        for i in 0..5000u32 {
            let k = format!("key{i:08}");
            c.seek(k.as_bytes()).unwrap().unwrap();
        }
        // Dense ascending probes should ride leaves: descents only when
        // crossing leaf boundaries... and even those go through the fast
        // path check first. Expect descents << probes.
        assert!(
            c.descents < 5000 / 4,
            "descents {} leaf_hits {}",
            c.descents,
            c.leaf_hits
        );
        assert!(c.leaf_hits > 5000 / 2);
    }

    #[test]
    fn cursor_on_empty_tree() {
        let t = build(0);
        let mut c = StatefulCursor::new(&t);
        assert!(c.seek(b"x").unwrap().is_none());
    }

    #[test]
    fn sparse_probes_still_correct() {
        let t = build(5000);
        let mut c = StatefulCursor::new(&t);
        for i in (0..5000u32).step_by(997) {
            let k = format!("key{i:08}");
            let (v, _) = c.seek(k.as_bytes()).unwrap().unwrap();
            assert_eq!(v, format!("v{i}").as_bytes());
        }
    }

    #[test]
    fn stateful_cursor_charges_less_cpu_than_cold_searches() {
        let t = build(5000);
        let s = t.storage().clone();
        // Warm the cache so only CPU costs differ.
        let mut c = StatefulCursor::new(&t);
        for i in 0..5000u32 {
            c.seek(format!("key{i:08}").as_bytes()).unwrap();
        }
        let cpu_before = s.stats().cpu_ns;
        let mut c = StatefulCursor::new(&t);
        for i in 0..5000u32 {
            c.seek(format!("key{i:08}").as_bytes()).unwrap();
        }
        let cursor_cpu = s.stats().cpu_ns - cpu_before;

        let cpu_before = s.stats().cpu_ns;
        for i in 0..5000u32 {
            t.search(format!("key{i:08}").as_bytes()).unwrap();
        }
        let cold_cpu = s.stats().cpu_ns - cpu_before;
        assert!(
            cursor_cpu < cold_cpu,
            "cursor {cursor_cpu} vs cold {cold_cpu}"
        );
    }
}
