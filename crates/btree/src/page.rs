//! Slotted page formats for the immutable B+-tree.
//!
//! Components are written once by a bulk loader and never modified, so the
//! layout is a tightly packed slotted page with a slot (offset) directory for
//! binary search:
//!
//! ```text
//! Leaf page:      [base_ordinal u64][count u16][slot u16 × count]
//!                 [entry: klen varint, key, vlen varint, value] × count
//! Internal page:  [count u16][slot u16 × count]
//!                 [entry: klen varint, key, child u32] × count
//! ```
//!
//! `base_ordinal` is the number of entries in all preceding leaves; it lets a
//! search report the global ordinal position of a match, which the mutable
//! bitmaps of Sections 4.4/5 index by.

use crate::encoding::{get_slice, get_varint, put_slice, put_varint, slice_len};
use lsm_common::{Error, Result};

/// Builds a leaf page incrementally, respecting a page-size budget.
#[derive(Debug)]
pub struct LeafPageBuilder {
    page_size: usize,
    base_ordinal: u64,
    slots: Vec<u32>,
    heap: Vec<u8>,
    first_key: Option<Vec<u8>>,
    last_key: Option<Vec<u8>>,
}

/// Fixed header: base_ordinal (8) + count (2).
const LEAF_HEADER: usize = 10;
const INTERNAL_HEADER: usize = 2;

impl LeafPageBuilder {
    /// Creates a builder for a leaf whose first entry has global ordinal
    /// `base_ordinal`.
    pub fn new(page_size: usize, base_ordinal: u64) -> Self {
        LeafPageBuilder {
            page_size,
            base_ordinal,
            slots: Vec::new(),
            heap: Vec::new(),
            first_key: None,
            last_key: None,
        }
    }

    /// Bytes the page would occupy if finished now.
    pub fn current_size(&self) -> usize {
        LEAF_HEADER + self.slots.len() * 4 + self.heap.len()
    }

    /// True if `(key, value)` fits in the remaining budget.
    pub fn fits(&self, key: &[u8], value: &[u8]) -> bool {
        self.current_size() + 4 + slice_len(key) + slice_len(value) <= self.page_size
    }

    /// True if no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of entries added.
    pub fn count(&self) -> usize {
        self.slots.len()
    }

    /// Appends an entry. Keys must arrive in strictly ascending order;
    /// callers are responsible for ordering, the builder only debug-asserts.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if !self.fits(key, value) && !self.is_empty() {
            return Err(Error::Storage("leaf page overflow".into()));
        }
        debug_assert!(
            self.last_key.as_deref().is_none_or(|lk| lk < key),
            "keys must be strictly ascending"
        );
        if self.heap.len() > u32::MAX as usize {
            return Err(Error::Storage("page offset overflow".into()));
        }
        self.slots.push(self.heap.len() as u32);
        put_slice(&mut self.heap, key);
        put_slice(&mut self.heap, value);
        if self.first_key.is_none() {
            self.first_key = Some(key.to_vec());
        }
        self.last_key = Some(key.to_vec());
        Ok(())
    }

    /// First key in the page (None if empty).
    pub fn first_key(&self) -> Option<&[u8]> {
        self.first_key.as_deref()
    }

    /// Serializes the page.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.current_size());
        out.extend_from_slice(&self.base_ordinal.to_le_bytes());
        out.extend_from_slice(&(self.slots.len() as u16).to_le_bytes());
        for s in &self.slots {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out.extend_from_slice(&self.heap);
        out
    }
}

/// Read-only view over a serialized leaf page.
#[derive(Debug, Clone, Copy)]
pub struct LeafPage<'a> {
    data: &'a [u8],
    count: usize,
    base_ordinal: u64,
}

impl<'a> LeafPage<'a> {
    /// Parses the page header.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        if data.len() < LEAF_HEADER {
            return Err(Error::corruption("leaf page too short"));
        }
        let base_ordinal = u64::from_le_bytes(data[0..8].try_into().unwrap());
        let count = u16::from_le_bytes(data[8..10].try_into().unwrap()) as usize;
        if data.len() < LEAF_HEADER + count * 4 {
            return Err(Error::corruption("leaf slot directory out of bounds"));
        }
        Ok(LeafPage {
            data,
            count,
            base_ordinal,
        })
    }

    /// Number of entries.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Global ordinal of entry 0.
    pub fn base_ordinal(&self) -> u64 {
        self.base_ordinal
    }

    fn entry_at(&self, idx: usize) -> Result<(&'a [u8], &'a [u8])> {
        let slot_off = LEAF_HEADER + idx * 4;
        let off = u32::from_le_bytes(self.data[slot_off..slot_off + 4].try_into().unwrap());
        let heap = &self.data[LEAF_HEADER + self.count * 4..];
        let rest = heap
            .get(off as usize..)
            .ok_or_else(|| Error::corruption("leaf entry offset out of bounds"))?;
        let (key, n) = get_slice(rest)?;
        let (value, _) = get_slice(&rest[n..])?;
        Ok((key, value))
    }

    /// Returns the entry at `idx` (panics on out-of-bounds index).
    pub fn entry(&self, idx: usize) -> Result<(&'a [u8], &'a [u8])> {
        assert!(idx < self.count, "leaf index out of bounds");
        self.entry_at(idx)
    }

    /// Key of the entry at `idx`.
    pub fn key(&self, idx: usize) -> Result<&'a [u8]> {
        Ok(self.entry(idx)?.0)
    }

    /// First key (None if the page is empty).
    pub fn first_key(&self) -> Result<Option<&'a [u8]>> {
        if self.count == 0 {
            return Ok(None);
        }
        Ok(Some(self.key(0)?))
    }

    /// Last key (None if the page is empty).
    pub fn last_key(&self) -> Result<Option<&'a [u8]>> {
        if self.count == 0 {
            return Ok(None);
        }
        Ok(Some(self.key(self.count - 1)?))
    }

    /// Binary search for `key`. Returns `(Ok(idx), cmps)` on an exact match
    /// or `(Err(insertion_point), cmps)` otherwise, where `cmps` is the
    /// number of key comparisons performed (for CPU cost accounting).
    pub fn search(&self, key: &[u8]) -> Result<(std::result::Result<usize, usize>, u32)> {
        let mut lo = 0usize;
        let mut hi = self.count;
        let mut cmps = 0u32;
        while lo < hi {
            let mid = (lo + hi) / 2;
            cmps += 1;
            match self.key(mid)?.cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok((Ok(mid), cmps)),
            }
        }
        Ok((Err(lo), cmps))
    }

    /// Exponential (galloping) search for `key` starting at position `from`
    /// (Bentley & Yao, used by the stateful cursor of Section 3.2). Returns
    /// the same shape as [`LeafPage::search`].
    pub fn exponential_search(
        &self,
        key: &[u8],
        from: usize,
    ) -> Result<(std::result::Result<usize, usize>, u32)> {
        let mut cmps = 0u32;
        let n = self.count;
        if from >= n {
            return Ok((Err(n), cmps));
        }
        // Gallop: find a window [from + step/2, from + step] containing key.
        let mut step = 1usize;
        let mut prev = from;
        let mut bound = from;
        loop {
            cmps += 1;
            match self.key(bound)?.cmp(key) {
                std::cmp::Ordering::Less => {
                    prev = bound + 1;
                    if bound == n - 1 {
                        return Ok((Err(n), cmps));
                    }
                    bound = (bound + step).min(n - 1);
                    step *= 2;
                }
                std::cmp::Ordering::Equal => return Ok((Ok(bound), cmps)),
                std::cmp::Ordering::Greater => break,
            }
        }
        // Binary search in [prev, bound).
        let mut lo = prev;
        let mut hi = bound;
        while lo < hi {
            let mid = (lo + hi) / 2;
            cmps += 1;
            match self.key(mid)?.cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok((Ok(mid), cmps)),
            }
        }
        Ok((Err(lo), cmps))
    }
}

/// Builds an internal (router) page.
#[derive(Debug)]
pub struct InternalPageBuilder {
    page_size: usize,
    slots: Vec<u32>,
    heap: Vec<u8>,
    first_key: Option<Vec<u8>>,
}

impl InternalPageBuilder {
    /// Creates an internal page builder.
    pub fn new(page_size: usize) -> Self {
        InternalPageBuilder {
            page_size,
            slots: Vec::new(),
            heap: Vec::new(),
            first_key: None,
        }
    }

    /// Bytes the page would occupy if finished now.
    pub fn current_size(&self) -> usize {
        INTERNAL_HEADER + self.slots.len() * 4 + self.heap.len()
    }

    /// True if a `(separator, child)` entry fits.
    pub fn fits(&self, key: &[u8]) -> bool {
        self.current_size() + 4 + slice_len(key) + 5 <= self.page_size
    }

    /// True if no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of children.
    pub fn count(&self) -> usize {
        self.slots.len()
    }

    /// Appends a `(separator key, child page)` routing entry. The separator
    /// is the first key of the child subtree; entries ascend strictly.
    pub fn add(&mut self, key: &[u8], child: u32) -> Result<()> {
        if !self.fits(key) && !self.is_empty() {
            return Err(Error::Storage("internal page overflow".into()));
        }
        if self.heap.len() > u32::MAX as usize {
            return Err(Error::Storage("page offset overflow".into()));
        }
        self.slots.push(self.heap.len() as u32);
        put_slice(&mut self.heap, key);
        put_varint(&mut self.heap, u64::from(child));
        if self.first_key.is_none() {
            self.first_key = Some(key.to_vec());
        }
        Ok(())
    }

    /// First separator key.
    pub fn first_key(&self) -> Option<&[u8]> {
        self.first_key.as_deref()
    }

    /// Serializes the page.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.current_size());
        out.extend_from_slice(&(self.slots.len() as u16).to_le_bytes());
        for s in &self.slots {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out.extend_from_slice(&self.heap);
        out
    }
}

/// Read-only view over a serialized internal page.
#[derive(Debug, Clone, Copy)]
pub struct InternalPage<'a> {
    data: &'a [u8],
    count: usize,
}

impl<'a> InternalPage<'a> {
    /// Parses the page header.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        if data.len() < INTERNAL_HEADER {
            return Err(Error::corruption("internal page too short"));
        }
        let count = u16::from_le_bytes(data[0..2].try_into().unwrap()) as usize;
        if data.len() < INTERNAL_HEADER + count * 4 {
            return Err(Error::corruption("internal slot directory out of bounds"));
        }
        Ok(InternalPage { data, count })
    }

    /// Number of children.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Returns the `(separator, child)` entry at `idx`.
    pub fn entry(&self, idx: usize) -> Result<(&'a [u8], u32)> {
        assert!(idx < self.count, "internal index out of bounds");
        let slot_off = INTERNAL_HEADER + idx * 4;
        let off = u32::from_le_bytes(self.data[slot_off..slot_off + 4].try_into().unwrap());
        let heap = &self.data[INTERNAL_HEADER + self.count * 4..];
        let rest = heap
            .get(off as usize..)
            .ok_or_else(|| Error::corruption("internal entry offset out of bounds"))?;
        let (key, n) = get_slice(rest)?;
        let (child, _) = get_varint(&rest[n..])?;
        Ok((key, child as u32))
    }

    /// Finds the child to descend into for `key`: the rightmost child whose
    /// separator is `<= key` (the leftmost child if `key` sorts before all
    /// separators). Returns `(child_idx, child_page, cmps)`.
    pub fn route(&self, key: &[u8]) -> Result<(usize, u32, u32)> {
        debug_assert!(self.count > 0, "routing in empty internal page");
        let mut lo = 0usize;
        let mut hi = self.count;
        let mut cmps = 0u32;
        // Find first separator > key.
        while lo < hi {
            let mid = (lo + hi) / 2;
            cmps += 1;
            if self.entry(mid)?.0 <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let idx = lo.saturating_sub(1);
        let (_, child) = self.entry(idx)?;
        Ok((idx, child, cmps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_leaf(entries: &[(&[u8], &[u8])], base: u64) -> Vec<u8> {
        let mut b = LeafPageBuilder::new(4096, base);
        for (k, v) in entries {
            b.add(k, v).unwrap();
        }
        b.finish()
    }

    #[test]
    fn leaf_roundtrip() {
        let data = build_leaf(&[(b"a", b"1"), (b"bb", b"22"), (b"ccc", b"")], 7);
        let p = LeafPage::parse(&data).unwrap();
        assert_eq!(p.count(), 3);
        assert_eq!(p.base_ordinal(), 7);
        assert_eq!(p.entry(0).unwrap(), (&b"a"[..], &b"1"[..]));
        assert_eq!(p.entry(1).unwrap(), (&b"bb"[..], &b"22"[..]));
        assert_eq!(p.entry(2).unwrap(), (&b"ccc"[..], &b""[..]));
        assert_eq!(p.first_key().unwrap(), Some(&b"a"[..]));
        assert_eq!(p.last_key().unwrap(), Some(&b"ccc"[..]));
    }

    #[test]
    fn empty_leaf() {
        let data = LeafPageBuilder::new(4096, 0).finish();
        let p = LeafPage::parse(&data).unwrap();
        assert_eq!(p.count(), 0);
        assert_eq!(p.first_key().unwrap(), None);
        assert_eq!(p.search(b"x").unwrap().0, Err(0));
    }

    #[test]
    fn leaf_binary_search() {
        let data = build_leaf(&[(b"b", b"1"), (b"d", b"2"), (b"f", b"3")], 0);
        let p = LeafPage::parse(&data).unwrap();
        assert_eq!(p.search(b"b").unwrap().0, Ok(0));
        assert_eq!(p.search(b"d").unwrap().0, Ok(1));
        assert_eq!(p.search(b"f").unwrap().0, Ok(2));
        assert_eq!(p.search(b"a").unwrap().0, Err(0));
        assert_eq!(p.search(b"c").unwrap().0, Err(1));
        assert_eq!(p.search(b"g").unwrap().0, Err(3));
    }

    #[test]
    fn leaf_overflow_detected() {
        let mut b = LeafPageBuilder::new(64, 0);
        let big = vec![b'x'; 100];
        // First entry always allowed (oversized single entries get their own
        // page at a higher layer is NOT supported; builder accepts entry 1).
        b.add(b"a", &big).unwrap();
        assert!(b.add(b"b", &big).is_err());
    }

    #[test]
    fn exponential_search_matches_binary_search() {
        let keys: Vec<Vec<u8>> = (0..100u32)
            .map(|i| format!("k{i:04}").into_bytes())
            .collect();
        let entries: Vec<(&[u8], &[u8])> = keys.iter().map(|k| (k.as_slice(), &b"v"[..])).collect();
        let data = build_leaf(&entries, 0);
        let p = LeafPage::parse(&data).unwrap();
        for from in [0usize, 10, 50, 99] {
            for probe in ["k0000", "k0049", "k0050", "k0051", "k0099", "k9999", "a"] {
                let (bin, _) = p.search(probe.as_bytes()).unwrap();
                let (exp, _) = p.exponential_search(probe.as_bytes(), from).unwrap();
                // Exponential search from `from` can only find matches at
                // >= from; mismatches below `from` report an insertion point
                // clamped to >= from.
                match bin {
                    Ok(i) if i >= from => assert_eq!(exp, Ok(i), "probe {probe} from {from}"),
                    Ok(_) => {} // target before `from`: cursor misuse, undefined
                    Err(i) if i >= from => {
                        assert_eq!(exp, Err(i), "probe {probe} from {from}")
                    }
                    Err(_) => {}
                }
            }
        }
    }

    #[test]
    fn exponential_search_near_position_is_cheap() {
        let keys: Vec<Vec<u8>> = (0..200u32)
            .map(|i| format!("k{i:04}").into_bytes())
            .collect();
        let entries: Vec<(&[u8], &[u8])> = keys.iter().map(|k| (k.as_slice(), &b"v"[..])).collect();
        let data = build_leaf(&entries, 0);
        let p = LeafPage::parse(&data).unwrap();
        // Searching the immediate successor takes O(1) comparisons...
        let (_, cmps_near) = p.exponential_search(b"k0101", 100).unwrap();
        // ...while full binary search takes ~log2(200) ≈ 8.
        let (_, cmps_bin) = p.search(b"k0101").unwrap();
        assert!(cmps_near < cmps_bin, "{cmps_near} vs {cmps_bin}");
    }

    #[test]
    fn internal_roundtrip_and_route() {
        let mut b = InternalPageBuilder::new(4096);
        b.add(b"a", 10).unwrap();
        b.add(b"m", 20).unwrap();
        b.add(b"t", 30).unwrap();
        let data = b.finish();
        let p = InternalPage::parse(&data).unwrap();
        assert_eq!(p.count(), 3);
        assert_eq!(p.entry(1).unwrap(), (&b"m"[..], 20));
        // key before first separator routes to the leftmost child
        assert_eq!(p.route(b"A").unwrap().1, 10);
        assert_eq!(p.route(b"a").unwrap().1, 10);
        assert_eq!(p.route(b"c").unwrap().1, 10);
        assert_eq!(p.route(b"m").unwrap().1, 20);
        assert_eq!(p.route(b"n").unwrap().1, 20);
        assert_eq!(p.route(b"z").unwrap().1, 30);
    }

    #[test]
    fn parse_rejects_corruption() {
        assert!(LeafPage::parse(&[1, 2]).is_err());
        assert!(InternalPage::parse(&[1]).is_err());
        // Slot count larger than page.
        let mut bad = vec![0u8; 10];
        bad[8] = 0xFF;
        bad[9] = 0xFF;
        assert!(LeafPage::parse(&bad).is_err());
    }
}
