//! Varint and slice encoding helpers shared by the page formats.

use lsm_common::{Error, Result};

/// Appends a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint, returning `(value, bytes_consumed)`.
pub fn get_varint(buf: &[u8]) -> Result<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0;
    for (i, &b) in buf.iter().enumerate() {
        if shift >= 64 {
            return Err(Error::corruption("varint overflow"));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(Error::corruption("truncated varint"))
}

/// Number of bytes [`put_varint`] writes for `v`.
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        return 1;
    }
    (64 - v.leading_zeros() as usize).div_ceil(7)
}

/// Appends a length-prefixed byte slice.
pub fn put_slice(out: &mut Vec<u8>, s: &[u8]) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s);
}

/// Reads a length-prefixed byte slice, returning `(slice, bytes_consumed)`.
pub fn get_slice(buf: &[u8]) -> Result<(&[u8], usize)> {
    let (len, n) = get_varint(buf)?;
    let len = len as usize;
    if buf.len() < n + len {
        return Err(Error::corruption("truncated slice"));
    }
    Ok((&buf[n..n + len], n + len))
}

/// Encoded size of a length-prefixed slice.
pub fn slice_len(s: &[u8]) -> usize {
    varint_len(s.len() as u64) + s.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "v={v}");
            let (got, n) = get_varint(&buf).unwrap();
            assert_eq!((got, n), (v, buf.len()));
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 100_000);
        assert!(get_varint(&buf[..1]).is_err());
        assert!(get_varint(&[]).is_err());
    }

    #[test]
    fn varint_rejects_overflow() {
        let buf = [0xFFu8; 11];
        assert!(get_varint(&buf).is_err());
    }

    #[test]
    fn slice_roundtrip() {
        let mut buf = Vec::new();
        put_slice(&mut buf, b"hello");
        put_slice(&mut buf, b"");
        assert_eq!(buf.len(), slice_len(b"hello") + slice_len(b""));
        let (s1, n1) = get_slice(&buf).unwrap();
        assert_eq!(s1, b"hello");
        let (s2, n2) = get_slice(&buf[n1..]).unwrap();
        assert_eq!(s2, b"");
        assert_eq!(n1 + n2, buf.len());
    }

    #[test]
    fn slice_rejects_truncation() {
        let mut buf = Vec::new();
        put_slice(&mut buf, b"hello");
        assert!(get_slice(&buf[..3]).is_err());
    }
}
