//! Immutable B+-trees for LSM disk components, plus the in-leaf search
//! machinery behind the paper's point-lookup optimizations.
//!
//! LSM components are written once (flush or merge) and never updated, so
//! the tree here is a bulk-loaded, tightly packed structure:
//!
//! * [`builder::BTreeBuilder`] — streaming bottom-up bulk loader; leaves are
//!   written contiguously so scans are sequential;
//! * [`tree::BTree`] — point search (returning each entry's global ordinal,
//!   which validity bitmaps index by), range scans, key-range metadata;
//! * [`cursor::StatefulCursor`] — the "stateful B+-tree lookup" of
//!   Section 3.2: remembers the last leaf/position and uses exponential
//!   search for sorted probe streams;
//! * [`leaf::LeafView`] — per-page leaf-codec dispatch: the plain slotted
//!   format plus the opt-in prefix-compressed and columnar strip formats
//!   ([`lsm_storage::LeafEncoding`]) read through one view, so
//!   mixed-encoding trees need no migration. Columnar pages keep keys and
//!   values in separate in-page strips, so index-only scans and probe
//!   filtering touch only the key strip.
//!
//! All page reads go through [`lsm_storage::Storage`], so every search and
//! scan is charged to the simulated device and CPU cost models.

#![warn(missing_docs)]

pub mod builder;
pub mod cursor;
pub mod encoding;
pub mod leaf;
pub mod page;
pub mod tree;

pub use builder::BTreeBuilder;
pub use cursor::StatefulCursor;
pub use leaf::{
    AnyLeafBuilder, ColumnarLeafPage, ColumnarLeafPageBuilder, LeafView, PrefixLeafPage,
    PrefixLeafPageBuilder,
};
pub use tree::{BTree, BTreeScan};
