//! Property tests: the bulk-loaded B+-tree agrees with a BTreeMap model for
//! search, scans, cursors, and ordinals.

use lsm_btree::{BTree, BTreeBuilder, StatefulCursor};
use lsm_storage::{Storage, StorageOptions};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;

fn build(model: &BTreeMap<Vec<u8>, Vec<u8>>) -> BTree {
    let storage = Storage::new(StorageOptions::test());
    let mut b = BTreeBuilder::new(storage);
    for (k, v) in model {
        b.add(k, v).unwrap();
    }
    b.finish().unwrap()
}

fn arb_model() -> impl Strategy<Value = BTreeMap<Vec<u8>, Vec<u8>>> {
    proptest::collection::btree_map(
        proptest::collection::vec(any::<u8>(), 1..12),
        proptest::collection::vec(any::<u8>(), 0..20),
        0..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn search_matches_model(model in arb_model(), probes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..12), 0..32)) {
        let tree = build(&model);
        // Present keys.
        for (k, v) in &model {
            let (got, _) = tree.search(k).unwrap().expect("present key");
            prop_assert_eq!(&got, v);
        }
        // Arbitrary probes.
        for p in &probes {
            prop_assert_eq!(tree.search(p).unwrap().map(|(v, _)| v), model.get(p).cloned());
        }
    }

    #[test]
    fn scan_matches_model_range(model in arb_model(), lo in proptest::collection::vec(any::<u8>(), 1..8), hi in proptest::collection::vec(any::<u8>(), 1..8)) {
        let tree = build(&model);
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let mut scan = tree.scan(Bound::Included(&lo), Bound::Included(hi.clone())).unwrap();
        let mut got = Vec::new();
        while let Some((k, v, _)) = scan.next_entry().unwrap() {
            got.push((k, v));
        }
        let want: Vec<_> = model
            .range::<Vec<u8>, _>((Bound::Included(&lo), Bound::Included(&hi)))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn ordinals_are_rank(model in arb_model()) {
        let tree = build(&model);
        for (rank, (k, _)) in model.iter().enumerate() {
            let (_, ordinal) = tree.search(k).unwrap().unwrap();
            prop_assert_eq!(ordinal, rank as u64);
        }
    }

    #[test]
    fn stateful_cursor_matches_search(model in arb_model()) {
        let tree = build(&model);
        let mut cursor = StatefulCursor::new(&tree);
        // Ascending probes over every model key plus misses between them.
        for k in model.keys() {
            let via_cursor = cursor.seek(k).unwrap().map(|(v, _)| v);
            prop_assert_eq!(via_cursor, model.get(k).cloned());
        }
    }
}
