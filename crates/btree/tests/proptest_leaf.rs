//! Property tests for the compressed leaf codecs (prefix and columnar):
//! encode→decode identity, search agreement with the plain (uncompressed)
//! encoding, and restart-interval edge cases, over key sets drawn from a
//! small alphabet so shared-prefix clusters arise naturally. Page sizes 0
//! and 1 are inside the generated range, so empty and single-entry pages
//! are exercised too.

use lsm_btree::page::LeafPageBuilder;
use lsm_btree::{BTree, BTreeBuilder, ColumnarLeafPageBuilder, LeafView, PrefixLeafPageBuilder};
use lsm_storage::{LeafEncoding, Storage, StorageOptions};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Keys over a 4-symbol alphabet: dense shared prefixes at every length.
fn arb_entries() -> impl Strategy<Value = BTreeMap<Vec<u8>, Vec<u8>>> {
    proptest::collection::btree_map(
        proptest::collection::vec(
            prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b'd')],
            1..16,
        ),
        proptest::collection::vec(any::<u8>(), 0..24),
        0..120,
    )
}

fn build_prefix(entries: &BTreeMap<Vec<u8>, Vec<u8>>, base: u64, interval: u16) -> Vec<u8> {
    let mut b = PrefixLeafPageBuilder::with_restart_interval(1 << 24, base, interval);
    for (k, v) in entries {
        b.add(k, v).unwrap();
    }
    b.finish()
}

fn build_columnar(entries: &BTreeMap<Vec<u8>, Vec<u8>>, base: u64, interval: u16) -> Vec<u8> {
    let mut b = ColumnarLeafPageBuilder::with_restart_interval(1 << 24, base, interval);
    for (k, v) in entries {
        b.add(k, v).unwrap();
    }
    b.finish()
}

fn build_plain(entries: &BTreeMap<Vec<u8>, Vec<u8>>, base: u64) -> Vec<u8> {
    let mut b = LeafPageBuilder::new(1 << 24, base);
    for (k, v) in entries {
        b.add(k, v).unwrap();
    }
    b.finish()
}

fn build_tree(entries: &BTreeMap<Vec<u8>, Vec<u8>>, encoding: LeafEncoding) -> BTree {
    let storage = Storage::new(StorageOptions {
        leaf_encoding: encoding,
        ..StorageOptions::test()
    });
    let mut b = BTreeBuilder::new(storage);
    for (k, v) in entries {
        b.add(k, v).unwrap();
    }
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Encode→decode identity: every entry, the count, the base ordinal,
    // and the first/last keys survive a round trip at any restart
    // interval (1 = every entry is a restart; larger than the entry
    // count = a single restart block).
    #[test]
    fn prefix_roundtrip_identity(
        entries in arb_entries(),
        base in 0u64..1 << 40,
        interval in 1u16..40,
    ) {
        let data = build_prefix(&entries, base, interval);
        let view = LeafView::parse(&data).unwrap();
        prop_assert!(matches!(view, LeafView::Prefix(_)));
        prop_assert_eq!(view.count(), entries.len());
        prop_assert_eq!(view.base_ordinal(), base);
        for (i, (k, v)) in entries.iter().enumerate() {
            let (gk, gv) = view.entry(i).unwrap();
            prop_assert_eq!(gk.as_ref(), k.as_slice(), "key {}", i);
            prop_assert_eq!(gv, v.as_slice(), "value {}", i);
        }
        let first = view.first_key().unwrap();
        prop_assert_eq!(
            first.as_ref().map(|k| k.as_ref()),
            entries.keys().next().map(|k| k.as_slice())
        );
        let last = view.last_key().unwrap();
        prop_assert_eq!(
            last.as_ref().map(|k| k.as_ref()),
            entries.keys().next_back().map(|k| k.as_slice())
        );
    }

    // In-page binary search and galloping search over the compressed page
    // return exactly what the uncompressed page returns, for present keys
    // and arbitrary probes alike.
    #[test]
    fn prefix_search_agrees_with_plain(
        entries in arb_entries(),
        interval in 1u16..40,
        probes in proptest::collection::vec(
            proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b'e')], 1..16),
            0..24,
        ),
        from in 0usize..140,
    ) {
        let prefix = build_prefix(&entries, 0, interval);
        let plain = build_plain(&entries, 0);
        let pv = LeafView::parse(&prefix).unwrap();
        let lv = LeafView::parse(&plain).unwrap();
        for probe in entries.keys().map(|k| k.as_slice()).chain(probes.iter().map(|p| p.as_slice())) {
            let (a, _) = pv.search(probe).unwrap();
            let (b, _) = lv.search(probe).unwrap();
            prop_assert_eq!(a, b, "search {:?}", probe);
            let (a, _) = pv.exponential_search(probe, from).unwrap();
            let (b, _) = lv.exponential_search(probe, from).unwrap();
            prop_assert_eq!(a, b, "exponential_search {:?} from {}", probe, from);
        }
    }

    // Columnar encode→decode identity: key strip and value strip reassemble
    // every entry at any restart interval, and first/last keys survive.
    #[test]
    fn columnar_roundtrip_identity(
        entries in arb_entries(),
        base in 0u64..1 << 40,
        interval in 1u16..40,
    ) {
        let data = build_columnar(&entries, base, interval);
        let view = LeafView::parse(&data).unwrap();
        prop_assert!(matches!(view, LeafView::Columnar(_)));
        prop_assert_eq!(view.count(), entries.len());
        prop_assert_eq!(view.base_ordinal(), base);
        for (i, (k, v)) in entries.iter().enumerate() {
            let (gk, gv) = view.entry(i).unwrap();
            prop_assert_eq!(gk.as_ref(), k.as_slice(), "key {}", i);
            prop_assert_eq!(gv, v.as_slice(), "value {}", i);
            // Index-only access: the key accessor alone agrees too.
            let key_only = view.key(i).unwrap();
            prop_assert_eq!(key_only.as_ref(), k.as_slice());
        }
        let first = view.first_key().unwrap();
        prop_assert_eq!(
            first.as_ref().map(|k| k.as_ref()),
            entries.keys().next().map(|k| k.as_slice())
        );
        let last = view.last_key().unwrap();
        prop_assert_eq!(
            last.as_ref().map(|k| k.as_ref()),
            entries.keys().next_back().map(|k| k.as_slice())
        );
    }

    // Columnar in-page searches agree with the plain encoding for present
    // keys and arbitrary probes alike.
    #[test]
    fn columnar_search_agrees_with_plain(
        entries in arb_entries(),
        interval in 1u16..40,
        probes in proptest::collection::vec(
            proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b'e')], 1..16),
            0..24,
        ),
        from in 0usize..140,
    ) {
        let columnar = build_columnar(&entries, 0, interval);
        let plain = build_plain(&entries, 0);
        let cv = LeafView::parse(&columnar).unwrap();
        let lv = LeafView::parse(&plain).unwrap();
        for probe in entries.keys().map(|k| k.as_slice()).chain(probes.iter().map(|p| p.as_slice())) {
            let (a, _) = cv.search(probe).unwrap();
            let (b, _) = lv.search(probe).unwrap();
            prop_assert_eq!(a, b, "search {:?}", probe);
            let (a, _) = cv.exponential_search(probe, from).unwrap();
            let (b, _) = lv.exponential_search(probe, from).unwrap();
            prop_assert_eq!(a, b, "exponential_search {:?} from {}", probe, from);
        }
    }

    // The Plain encoding routed through the storage option produces pages
    // the original builder wrote, byte for byte.
    #[test]
    fn plain_pages_are_byte_identical(entries in arb_entries()) {
        let via_any = {
            let mut b = lsm_btree::AnyLeafBuilder::new(LeafEncoding::Plain, 1 << 24, 7);
            for (k, v) in &entries {
                b.add(k, v).unwrap();
            }
            b.finish()
        };
        prop_assert_eq!(via_any, build_plain(&entries, 7));
    }

    // Whole-tree agreement: bulk-loaded trees with prefix-compressed and
    // columnar leaves answer searches and range scans identically to the
    // plain tree (and to the model), across leaf boundaries.
    #[test]
    fn compressed_trees_match_plain_tree(
        entries in arb_entries(),
        lo in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'c')], 1..8),
        hi in proptest::collection::vec(prop_oneof![Just(b'b'), Just(b'd')], 1..8),
    ) {
        let plain = build_tree(&entries, LeafEncoding::Plain);
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let collect = |tree: &BTree| {
            let mut scan = tree
                .scan(Bound::Included(&lo), Bound::Included(hi.clone()))
                .unwrap();
            let mut got = Vec::new();
            while let Some((k, v, o)) = scan.next_entry().unwrap() {
                got.push((k, v, o));
            }
            got
        };
        let plain_scan = collect(&plain);
        for encoding in [LeafEncoding::Prefix, LeafEncoding::Columnar] {
            let tree = build_tree(&entries, encoding);
            for (k, v) in &entries {
                let got = tree.search(k).unwrap().expect("present key");
                prop_assert_eq!(&got.0, v);
                prop_assert_eq!(got.1, plain.search(k).unwrap().unwrap().1, "ordinal");
            }
            prop_assert_eq!(collect(&tree), plain_scan.clone(), "{:?}", encoding);
        }
    }
}
