//! A fast 64-bit hash for Bloom filter probing.
//!
//! FNV-1a over 8-byte chunks followed by the MurmurHash3 64-bit finalizer
//! (`fmix64`). Not cryptographic; quality is more than sufficient for Bloom
//! filter probe derivation, and having our own keeps the crate
//! dependency-free.

/// Hashes `data` with the given `seed`.
pub fn hash64(data: &[u8], seed: u64) -> u64 {
    const PRIME: u64 = 0x100_0000_01B3;
    let mut h = seed ^ 0xCBF2_9CE4_8422_2325;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let v = u64::from_le_bytes(c.try_into().unwrap());
        h = (h ^ v).wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        tail[7] = rem.len() as u8; // length-disambiguate short tails
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME);
    }
    fmix64(h ^ data.len() as u64)
}

/// MurmurHash3's 64-bit finalizer: full avalanche of all input bits.
#[inline]
pub fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 33;
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(hash64(b"hello", 1), hash64(b"hello", 1));
    }

    #[test]
    fn seed_changes_hash() {
        assert_ne!(hash64(b"hello", 1), hash64(b"hello", 2));
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        let mut seen = HashSet::new();
        for i in 0..100_000u64 {
            seen.insert(hash64(&i.to_be_bytes(), 0));
        }
        assert_eq!(seen.len(), 100_000);
    }

    #[test]
    fn prefixes_hash_differently() {
        // Tail handling must distinguish "ab" from "ab\0".
        assert_ne!(hash64(b"ab", 0), hash64(b"ab\0", 0));
        assert_ne!(hash64(b"", 0), hash64(b"\0", 0));
    }

    #[test]
    fn bit_distribution_is_roughly_uniform() {
        // Count set bits across many hashes; each bit position should be set
        // about half the time.
        let n = 10_000;
        let mut counts = [0u32; 64];
        for i in 0..n {
            let h = hash64(&(i as u64).to_le_bytes(), 7);
            for (b, c) in counts.iter_mut().enumerate() {
                if h & (1 << b) != 0 {
                    *c += 1;
                }
            }
        }
        for (b, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((0.45..0.55).contains(&frac), "bit {b}: {frac}");
        }
    }
}
