//! Bloom filters for LSM disk components.
//!
//! Every primary / primary-key-index disk component carries a Bloom filter on
//! its stored primary keys (Section 3 of the paper): a point lookup checks
//! the filter first and searches the component's B+-tree only if the filter
//! reports that the key may exist.
//!
//! Two variants are provided:
//!
//! * [`StandardBloom`] — the classic filter: `k` independent bit probes
//!   spread across the whole bit array. Each probe is a likely CPU cache
//!   miss.
//! * [`BlockedBloom`] — the cache-friendly variant of Putze et al.
//!   (Section 3.2, "Blocked Bloom Filter"): the first hash selects one
//!   cache-line-sized block and all `k` probes stay inside it, so a
//!   membership test costs a single cache miss, at the price of roughly one
//!   extra bit per key for the same false-positive rate.
//!
//! Both use the same double-hashing scheme (`g_i = h1 + i·h2`), which is the
//! standard way to derive `k` probes from one 64-bit hash.

#![warn(missing_docs)]

mod hash;

pub use hash::{fmix64, hash64};

/// Block size of the blocked filter: one CPU cache line (64 bytes).
pub const BLOCK_BITS: usize = 512;

/// Common interface of the two Bloom filter variants.
pub trait BloomFilter: Send + Sync {
    /// Inserts a key.
    fn insert(&mut self, key: &[u8]);
    /// Tests membership; false positives possible, false negatives not.
    fn may_contain(&self, key: &[u8]) -> bool;
    /// Number of hash probes per operation.
    fn num_probes(&self) -> u32;
    /// Size of the bit array in bits.
    fn num_bits(&self) -> usize;
    /// True if a membership test touches a single cache line.
    fn is_blocked(&self) -> bool;
    /// Tests many keys in one call, writing one verdict per key into `out`
    /// (cleared first). The default probes key by key; blocked filters
    /// override it with a two-pass layout that resolves every key's block
    /// up front before probing — the batched shape scan and fetch paths
    /// issue, which keeps the block loads independent of the probe loop.
    fn may_contain_batch(&self, keys: &[&[u8]], out: &mut Vec<bool>) {
        out.clear();
        out.extend(keys.iter().map(|k| self.may_contain(k)));
    }
}

/// Returns the optimal number of probes for a given bits-per-key budget.
pub fn optimal_k(bits_per_key: f64) -> u32 {
    ((bits_per_key * std::f64::consts::LN_2).round() as u32).clamp(1, 30)
}

/// Returns the bits-per-key budget achieving a target false-positive rate
/// for a standard Bloom filter: `bits/key = -ln(p) / ln(2)^2`.
pub fn bits_per_key_for_fpr(fpr: f64) -> f64 {
    let fpr = fpr.clamp(1e-9, 0.5);
    -fpr.ln() / (std::f64::consts::LN_2 * std::f64::consts::LN_2)
}

fn probe_pair(key: &[u8]) -> (u64, u64) {
    let h = hash64(key, 0x9E37_79B9_7F4A_7C15);
    let h1 = h;
    let h2 = (h >> 32) | 1; // odd, so probes cycle through the space
    (h1, h2)
}

/// Classic Bloom filter with probes spread over the whole bit array.
#[derive(Debug, Clone)]
pub struct StandardBloom {
    bits: Vec<u64>,
    nbits: u64,
    k: u32,
}

impl StandardBloom {
    /// Creates a filter sized for `expected_keys` keys at `fpr` target
    /// false-positive rate (the paper's experiments use 1%).
    pub fn new(expected_keys: usize, fpr: f64) -> Self {
        let bpk = bits_per_key_for_fpr(fpr);
        Self::with_bits_per_key(expected_keys, bpk)
    }

    /// Creates a filter with an explicit bits-per-key budget.
    pub fn with_bits_per_key(expected_keys: usize, bits_per_key: f64) -> Self {
        let nbits = ((expected_keys.max(1) as f64 * bits_per_key).ceil() as u64).max(64);
        let words = nbits.div_ceil(64) as usize;
        StandardBloom {
            bits: vec![0; words],
            nbits: words as u64 * 64,
            k: optimal_k(bits_per_key),
        }
    }

    fn set_bit(&mut self, bit: u64) {
        self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
    }

    fn get_bit(&self, bit: u64) -> bool {
        self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
    }

    /// Memory footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.bits.len() * 8
    }
}

impl BloomFilter for StandardBloom {
    fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = probe_pair(key);
        for i in 0..self.k as u64 {
            self.set_bit(h1.wrapping_add(i.wrapping_mul(h2)) % self.nbits);
        }
    }

    fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = probe_pair(key);
        (0..self.k as u64).all(|i| self.get_bit(h1.wrapping_add(i.wrapping_mul(h2)) % self.nbits))
    }

    fn num_probes(&self) -> u32 {
        self.k
    }

    fn num_bits(&self) -> usize {
        self.nbits as usize
    }

    fn is_blocked(&self) -> bool {
        false
    }
}

/// Cache-line blocked Bloom filter (Putze et al.).
///
/// The first hash selects a 512-bit block; the `k` probes index within that
/// block. One extra bit per key is budgeted relative to the standard filter
/// to compensate for the uneven per-block load, per the paper.
#[derive(Debug, Clone)]
pub struct BlockedBloom {
    /// Blocks of 8×u64 = 512 bits each.
    blocks: Vec<[u64; 8]>,
    k: u32,
}

impl BlockedBloom {
    /// Creates a filter sized for `expected_keys` at `fpr`, adding the one
    /// extra bit per key the blocked layout requires.
    pub fn new(expected_keys: usize, fpr: f64) -> Self {
        let bpk = bits_per_key_for_fpr(fpr) + 1.0;
        Self::with_bits_per_key(expected_keys, bpk)
    }

    /// Creates a filter with an explicit bits-per-key budget.
    pub fn with_bits_per_key(expected_keys: usize, bits_per_key: f64) -> Self {
        let nbits = (expected_keys.max(1) as f64 * bits_per_key).ceil() as usize;
        let nblocks = nbits.div_ceil(BLOCK_BITS).max(1);
        BlockedBloom {
            blocks: vec![[0u64; 8]; nblocks],
            // k is chosen from the *standard* budget: the extra bit is load
            // compensation, not additional probes.
            k: optimal_k(bits_per_key - 1.0),
        }
    }

    fn block_of(&self, h1: u64) -> usize {
        (h1 % self.blocks.len() as u64) as usize
    }

    /// Memory footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.blocks.len() * 64
    }
}

impl BloomFilter for BlockedBloom {
    fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = probe_pair(key);
        let b = self.block_of(h1);
        let block = &mut self.blocks[b];
        // Derive in-block bits from a different rotation of the hash so the
        // block choice and the bit choices are independent.
        let g1 = h1.rotate_left(21);
        for i in 0..self.k as u64 {
            let bit = (g1.wrapping_add(i.wrapping_mul(h2)) % BLOCK_BITS as u64) as usize;
            block[bit / 64] |= 1 << (bit % 64);
        }
    }

    fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = probe_pair(key);
        let block = &self.blocks[self.block_of(h1)];
        let g1 = h1.rotate_left(21);
        (0..self.k as u64).all(|i| {
            let bit = (g1.wrapping_add(i.wrapping_mul(h2)) % BLOCK_BITS as u64) as usize;
            block[bit / 64] & (1 << (bit % 64)) != 0
        })
    }

    fn num_probes(&self) -> u32 {
        self.k
    }

    fn num_bits(&self) -> usize {
        self.blocks.len() * BLOCK_BITS
    }

    fn is_blocked(&self) -> bool {
        true
    }

    /// Two-pass batched probe: pass one hashes every key and resolves its
    /// block index (on real hardware this is where the block's cache line
    /// would be prefetched); pass two runs the in-block probes. Verdicts
    /// are identical to per-key [`BloomFilter::may_contain`].
    fn may_contain_batch(&self, keys: &[&[u8]], out: &mut Vec<bool>) {
        let resolved: Vec<(usize, u64, u64)> = keys
            .iter()
            .map(|k| {
                let (h1, h2) = probe_pair(k);
                (self.block_of(h1), h1.rotate_left(21), h2)
            })
            .collect();
        out.clear();
        out.extend(resolved.into_iter().map(|(b, g1, h2)| {
            let block = &self.blocks[b];
            (0..self.k as u64).all(|i| {
                let bit = (g1.wrapping_add(i.wrapping_mul(h2)) % BLOCK_BITS as u64) as usize;
                block[bit / 64] & (1 << (bit % 64)) != 0
            })
        }));
    }
}

/// Which Bloom filter variant a component should build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BloomKind {
    /// Classic filter: k scattered probes.
    #[default]
    Standard,
    /// Cache-line blocked filter (Section 3.2 optimization).
    Blocked,
}

/// Builds a filter of the requested kind.
pub fn build_filter(kind: BloomKind, expected_keys: usize, fpr: f64) -> Box<dyn BloomFilter> {
    match kind {
        BloomKind::Standard => Box::new(StandardBloom::new(expected_keys, fpr)),
        BloomKind::Blocked => Box::new(BlockedBloom::new(expected_keys, fpr)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize, tag: u8) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                let mut k = vec![tag];
                k.extend_from_slice(&(i as u64).to_be_bytes());
                k
            })
            .collect()
    }

    fn check_no_false_negatives(f: &mut dyn BloomFilter) {
        for k in keys(10_000, 1) {
            f.insert(&k);
        }
        for k in keys(10_000, 1) {
            assert!(f.may_contain(&k));
        }
    }

    fn measure_fpr(f: &dyn BloomFilter) -> f64 {
        let absent = keys(20_000, 2);
        let fp = absent.iter().filter(|k| f.may_contain(k)).count();
        fp as f64 / absent.len() as f64
    }

    #[test]
    fn standard_no_false_negatives() {
        let mut f = StandardBloom::new(10_000, 0.01);
        check_no_false_negatives(&mut f);
    }

    #[test]
    fn blocked_no_false_negatives() {
        let mut f = BlockedBloom::new(10_000, 0.01);
        check_no_false_negatives(&mut f);
    }

    #[test]
    fn standard_fpr_near_target() {
        let mut f = StandardBloom::new(10_000, 0.01);
        for k in keys(10_000, 1) {
            f.insert(&k);
        }
        let fpr = measure_fpr(&f);
        assert!(fpr < 0.02, "fpr {fpr}");
    }

    #[test]
    fn blocked_fpr_near_target() {
        let mut f = BlockedBloom::new(10_000, 0.01);
        for k in keys(10_000, 1) {
            f.insert(&k);
        }
        let fpr = measure_fpr(&f);
        // Blocked filters have somewhat worse FPR at equal bits; the extra
        // bit per key should keep it within ~3x of the target.
        assert!(fpr < 0.03, "fpr {fpr}");
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = StandardBloom::new(100, 0.01);
        assert!(!f.may_contain(b"anything"));
        let b = BlockedBloom::new(100, 0.01);
        assert!(!b.may_contain(b"anything"));
    }

    #[test]
    fn blocked_pays_one_extra_bit_per_key() {
        let s = StandardBloom::new(100_000, 0.01);
        let b = BlockedBloom::new(100_000, 0.01);
        let extra_bits = b.num_bits() as i64 - s.num_bits() as i64;
        // About one extra bit per key (block rounding allows slack).
        assert!(extra_bits > 50_000, "extra {extra_bits}");
        assert!(extra_bits < 200_000, "extra {extra_bits}");
    }

    #[test]
    fn sizing_formulas() {
        // 1% fpr needs ~9.6 bits/key and 7 probes.
        let bpk = bits_per_key_for_fpr(0.01);
        assert!((bpk - 9.585).abs() < 0.01, "{bpk}");
        assert_eq!(optimal_k(bpk), 7);
    }

    #[test]
    fn build_filter_dispatches() {
        assert!(!build_filter(BloomKind::Standard, 10, 0.01).is_blocked());
        assert!(build_filter(BloomKind::Blocked, 10, 0.01).is_blocked());
    }

    #[test]
    fn batched_probe_agrees_with_single_probe() {
        let mut s = StandardBloom::new(5_000, 0.01);
        let mut b = BlockedBloom::new(5_000, 0.01);
        for k in keys(5_000, 1) {
            s.insert(&k);
            b.insert(&k);
        }
        let mut probes = keys(2_000, 1);
        probes.extend(keys(2_000, 2));
        let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
        for f in [&s as &dyn BloomFilter, &b as &dyn BloomFilter] {
            let mut out = vec![true; 3]; // must be cleared by the impl
            f.may_contain_batch(&refs, &mut out);
            assert_eq!(out.len(), refs.len());
            for (k, got) in refs.iter().zip(&out) {
                assert_eq!(*got, f.may_contain(k));
            }
        }
    }

    #[test]
    fn tiny_filters_work() {
        let mut f = StandardBloom::new(1, 0.01);
        f.insert(b"k");
        assert!(f.may_contain(b"k"));
        let mut b = BlockedBloom::new(1, 0.01);
        b.insert(b"k");
        assert!(b.may_contain(b"k"));
    }
}
