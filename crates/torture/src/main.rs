//! `torture` — sweep the fault-injection matrix and report failures with
//! one-line repro commands.
//!
//! ```text
//! torture                     # full sweep: strategy x maintenance x device x fault
//! torture --smoke             # CI subset, each case run twice to prove determinism
//! torture --seed 7 --fault crash-flush-install --strategy mutable-bitmap
//! torture --list              # print the selected cases without running them
//! ```

use lsm_storage::LeafEncoding;
use lsm_torture::{
    full_sweep, parse_strategy, run_case, smoke_sweep, strategy_name, DeviceKind, FaultKind,
    TortureCase,
};

struct Cli {
    smoke: bool,
    list: bool,
    seed: u64,
    records: Option<usize>,
    strategy: Option<String>,
    maintenance: Option<String>,
    device: Option<String>,
    fault: Option<String>,
    leaf_encoding: Option<String>,
    failures_file: String,
}

const USAGE: &str = "\
torture: deterministic fault-injection sweep over the LSM engine

USAGE: torture [OPTIONS]

OPTIONS:
  --smoke               run the CI smoke subset; every case runs twice and
                        the two fault schedules must be byte-identical
  --list                print the selected cases without running them
  --seed <N>            workload seed (default 42)
  --records <N>         ingest operations per case (default 1200, smoke 300)
  --strategy <S>        eager | validation | mutable-bitmap | deleted-key-btree
  --maintenance <M>     inline | background
  --device <D>          hdd | ssd | nvme
  --fault <F>           crash-wal-append | crash-group-commit |
                        crash-flush-install | crash-merge-install |
                        crash-checkpoint | torn-wal-write |
                        short-wal-write | transient-flush | transient-read
  --leaf-encoding <E>   plain | prefix | columnar
  --failures-file <P>   where to write failing repro lines
                        (default torture-failures.txt, written only on failure)
  --help                this text
";

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        smoke: false,
        list: false,
        seed: 42,
        records: None,
        strategy: None,
        maintenance: None,
        device: None,
        fault: None,
        leaf_encoding: None,
        failures_file: "torture-failures.txt".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--smoke" => cli.smoke = true,
            "--list" => cli.list = true,
            "--seed" => {
                cli.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--records" => {
                cli.records = Some(
                    value("--records")?
                        .parse()
                        .map_err(|e| format!("--records: {e}"))?,
                )
            }
            "--strategy" => cli.strategy = Some(value("--strategy")?),
            "--maintenance" => cli.maintenance = Some(value("--maintenance")?),
            "--device" => cli.device = Some(value("--device")?),
            "--fault" => cli.fault = Some(value("--fault")?),
            "--leaf-encoding" => cli.leaf_encoding = Some(value("--leaf-encoding")?),
            "--failures-file" => cli.failures_file = value("--failures-file")?,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other} (try --help)")),
        }
    }
    Ok(cli)
}

fn select_cases(cli: &Cli) -> Result<Vec<TortureCase>, String> {
    let records = cli.records.unwrap_or(if cli.smoke { 300 } else { 1200 });
    let mut cases = if cli.smoke {
        smoke_sweep(cli.seed, records)
    } else {
        full_sweep(cli.seed, records)
    };
    if let Some(s) = &cli.strategy {
        let k = parse_strategy(s).ok_or_else(|| format!("unknown strategy {s}"))?;
        cases.retain(|c| c.strategy == k);
    }
    if let Some(m) = &cli.maintenance {
        let background = match m.as_str() {
            "inline" => false,
            "background" => true,
            other => return Err(format!("unknown maintenance mode {other}")),
        };
        cases.retain(|c| c.background == background);
    }
    if let Some(d) = &cli.device {
        let k = DeviceKind::parse(d).ok_or_else(|| format!("unknown device {d}"))?;
        cases.retain(|c| c.device == k);
    }
    if let Some(f) = &cli.fault {
        let k = FaultKind::parse(f).ok_or_else(|| format!("unknown fault {f}"))?;
        cases.retain(|c| c.fault == k);
    }
    if let Some(e) = &cli.leaf_encoding {
        let k = LeafEncoding::parse(e).ok_or_else(|| format!("unknown leaf encoding {e}"))?;
        cases.retain(|c| c.leaf_encoding == k);
    }
    if cases.is_empty() {
        return Err("the selected filters match no cases".to_string());
    }
    Ok(cases)
}

fn label(case: &TortureCase) -> String {
    format!(
        "{}/{}/{}/{}/{}",
        strategy_name(case.strategy),
        if case.background {
            "background"
        } else {
            "inline"
        },
        case.device.name(),
        case.fault.name(),
        case.leaf_encoding.name()
    )
}

fn main() {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("torture: {e}");
            std::process::exit(2);
        }
    };
    let cases = match select_cases(&cli) {
        Ok(cases) => cases,
        Err(e) => {
            eprintln!("torture: {e}");
            std::process::exit(2);
        }
    };
    if cli.list {
        for case in &cases {
            println!("{}", case.repro());
        }
        return;
    }

    let mut failures: Vec<String> = Vec::new();
    for case in &cases {
        match run_case(case) {
            Ok(report) => {
                // Smoke mode proves determinism: the replay must produce a
                // byte-identical fault schedule. (Replay *counts* are only
                // compared for inline cases — with background workers, how
                // much had flushed before the crash is timing-dependent.)
                if cli.smoke {
                    match run_case(case) {
                        Ok(replay)
                            if replay.events == report.events
                                && (case.background || replay == report) => {}
                        Ok(replay) => {
                            println!("FAIL {} — nondeterministic replay", label(case));
                            failures.push(format!(
                                "{}  # first events {:?}, replay events {:?}",
                                case.repro(),
                                report.events,
                                replay.events
                            ));
                            continue;
                        }
                        Err(f) => {
                            println!("FAIL {} — replay failed: {}", label(case), f.message);
                            failures.push(format!("{}  # {}", f.repro, f.message));
                            continue;
                        }
                    }
                }
                println!(
                    "ok   {} ({} fault{}, {} replayed, {} live)",
                    label(case),
                    report.faults_injected,
                    if report.faults_injected == 1 { "" } else { "s" },
                    report.replayed,
                    report.live_records
                );
            }
            Err(f) => {
                println!("FAIL {} — {}", label(case), f.message);
                failures.push(format!("{}  # {}", f.repro, f.message));
            }
        }
    }

    if failures.is_empty() {
        println!("all {} cases passed", cases.len());
        return;
    }
    eprintln!("\n{} of {} cases FAILED:", failures.len(), cases.len());
    for line in &failures {
        eprintln!("  {line}");
    }
    if let Err(e) = std::fs::write(&cli.failures_file, failures.join("\n") + "\n") {
        eprintln!("torture: could not write {}: {e}", cli.failures_file);
    } else {
        eprintln!("repro lines written to {}", cli.failures_file);
    }
    std::process::exit(1);
}
