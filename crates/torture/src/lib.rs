//! Deterministic fault-injection torture harness for the LSM engine.
//!
//! Each [`TortureCase`] drives one dataset through four phases:
//!
//! 1. **Ingest** — a seeded tweet upsert/delete stream (reusing
//!    `lsm-workload`) with the case's maintenance mode active and periodic
//!    parallel secondary-index queries in flight, while an oracle map of
//!    the expected live records is maintained alongside.
//! 2. **Stabilize** — quiesce maintenance, force the WAL and take a base
//!    checkpoint, so everything ingested so far is durably *committed*.
//! 3. **Trigger** — arm the case's [`FaultPlan`] and run a single-threaded
//!    recipe that drives the engine into the scripted fault: a crash at a
//!    named crash site, a torn or short WAL write, or a transient I/O
//!    error. Arming only around this phase keeps the fault schedule
//!    byte-identical across runs regardless of background thread timing.
//! 4. **Verify** — for crash-like faults, run crash simulation and
//!    [`recovery::recover`] (twice — recovery must be idempotent) and check
//!    the recovered state against the oracle: every committed record is
//!    present and intact, uncommitted writes are rolled back (or form a
//!    prefix of the torn WAL tail), the logical clock has not moved
//!    backwards past committed data, secondary queries agree with the
//!    oracle, and the dataset accepts new writes. For transient faults,
//!    check the first attempt fails, the retry succeeds, and nothing is
//!    poisoned.
//!
//! Every failed invariant is reported as a [`TortureFailure`] carrying a
//! one-line `torture` command that reproduces the exact case.

#![warn(missing_docs)]

use lsm_common::{Record, Result as LsmResult, Value};
use lsm_engine::recovery::{self, CheckpointState};
use lsm_engine::{Dataset, DatasetConfig, MaintenanceMode, SecondaryIndexDef, StrategyKind};
use lsm_storage::{
    FaultAction, FaultOp, FaultPlan, FaultSpec, FaultTrigger, LeafEncoding, Storage, StorageOptions,
};
use lsm_tree::MergeRange;
use lsm_workload::{
    Op, SelectivityQueries, TweetConfig, TweetGenerator, UpdateDistribution, UpsertWorkload,
    USER_ID_DOMAIN,
};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Simulated device profile a case runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// 128KB pages, expensive seeks.
    Hdd,
    /// 32KB pages, cheap seeks.
    Ssd,
    /// 16KB pages, near-free seeks.
    Nvme,
}

impl DeviceKind {
    /// All devices, in sweep order.
    pub const ALL: [DeviceKind; 3] = [DeviceKind::Hdd, DeviceKind::Ssd, DeviceKind::Nvme];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Hdd => "hdd",
            DeviceKind::Ssd => "ssd",
            DeviceKind::Nvme => "nvme",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|d| d.name() == s)
    }

    /// Storage options for this device with a deliberately small cache, so
    /// queries and recovery actually touch the simulated platter.
    pub fn options(self) -> StorageOptions {
        match self {
            DeviceKind::Hdd => StorageOptions::hdd(1024 * 1024),
            DeviceKind::Ssd => StorageOptions::ssd(1024 * 1024),
            DeviceKind::Nvme => StorageOptions::nvme(1024 * 1024),
        }
    }
}

/// The scripted fault a case injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash at the `wal_append` site: the op fails before it is logged.
    CrashWalAppend,
    /// Crash at the `wal_group_write` site: the group-commit leader dies
    /// after a whole group of records was staged but before its single
    /// page append reached the device. Every member of the group must be
    /// absent after recovery (the committed prefix before the group
    /// survives untouched) — a group reaches the device in one append or
    /// not at all.
    CrashGroupCommit,
    /// Crash at the `flush_install` site: the primary's flushed component
    /// is installed, the primary key index's is not.
    CrashFlushInstall,
    /// Crash at the `merge_install` site: the primary's merged component is
    /// installed, the primary key index still holds the merge inputs.
    CrashMergeInstall,
    /// Crash at the `checkpoint` site: the checkpoint record is logged but
    /// no snapshot is taken; the previous checkpoint must stay usable.
    CrashCheckpoint,
    /// The WAL force's page is torn: a prefix survives, the rest reads
    /// back as zeroes.
    TornWalWrite,
    /// The WAL force's page lands truncated.
    ShortWalWrite,
    /// The first device write of a flush fails transiently; the flush must
    /// be retryable and must not poison the dataset.
    TransientFlush,
    /// The first device read of a query fails transiently; the retried
    /// query must succeed and agree with the oracle.
    TransientRead,
}

impl FaultKind {
    /// All fault kinds, in sweep order.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::CrashWalAppend,
        FaultKind::CrashGroupCommit,
        FaultKind::CrashFlushInstall,
        FaultKind::CrashMergeInstall,
        FaultKind::CrashCheckpoint,
        FaultKind::TornWalWrite,
        FaultKind::ShortWalWrite,
        FaultKind::TransientFlush,
        FaultKind::TransientRead,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::CrashWalAppend => "crash-wal-append",
            FaultKind::CrashGroupCommit => "crash-group-commit",
            FaultKind::CrashFlushInstall => "crash-flush-install",
            FaultKind::CrashMergeInstall => "crash-merge-install",
            FaultKind::CrashCheckpoint => "crash-checkpoint",
            FaultKind::TornWalWrite => "torn-wal-write",
            FaultKind::ShortWalWrite => "short-wal-write",
            FaultKind::TransientFlush => "transient-flush",
            FaultKind::TransientRead => "transient-read",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|f| f.name() == s)
    }

    /// True if the case runs crash recovery after the fault.
    pub fn is_crash(self) -> bool {
        !matches!(self, FaultKind::TransientFlush | FaultKind::TransientRead)
    }
}

/// CLI name of a maintenance strategy.
pub fn strategy_name(s: StrategyKind) -> &'static str {
    match s {
        StrategyKind::Eager => "eager",
        StrategyKind::Validation => "validation",
        StrategyKind::MutableBitmap => "mutable-bitmap",
        StrategyKind::DeletedKeyBTree => "deleted-key-btree",
    }
}

/// Parses a strategy CLI name.
pub fn parse_strategy(s: &str) -> Option<StrategyKind> {
    STRATEGIES.into_iter().find(|k| strategy_name(*k) == s)
}

/// All maintenance strategies, in sweep order.
pub const STRATEGIES: [StrategyKind; 4] = [
    StrategyKind::Eager,
    StrategyKind::Validation,
    StrategyKind::MutableBitmap,
    StrategyKind::DeletedKeyBTree,
];

/// One fully-specified torture run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TortureCase {
    /// Maintenance strategy under test.
    pub strategy: StrategyKind,
    /// Run flushes/merges on background workers during ingest.
    pub background: bool,
    /// Simulated device profile.
    pub device: DeviceKind,
    /// The scripted fault.
    pub fault: FaultKind,
    /// Leaf-page encoding for the data storage's B+-trees.
    pub leaf_encoding: LeafEncoding,
    /// Workload seed; the whole case is deterministic given the seed.
    pub seed: u64,
    /// Ingest-phase operations.
    pub records: usize,
}

impl TortureCase {
    /// The one-line `torture` invocation that replays exactly this case.
    pub fn repro(&self) -> String {
        format!(
            "torture --seed {} --records {} --strategy {} --maintenance {} --device {} \
             --fault {} --leaf-encoding {}",
            self.seed,
            self.records,
            strategy_name(self.strategy),
            if self.background {
                "background"
            } else {
                "inline"
            },
            self.device.name(),
            self.fault.name(),
            self.leaf_encoding.name(),
        )
    }
}

/// What a passed case did, for reporting and determinism comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseReport {
    /// The fault plan's event log — the byte-comparable fault schedule.
    pub events: Vec<String>,
    /// Faults the plan injected (always at least 1 for a passed case).
    pub faults_injected: u64,
    /// Log records replayed by the first recovery (0 for transient kinds).
    pub replayed: u64,
    /// Live records in the oracle at the end of the case.
    pub live_records: usize,
}

/// A failed invariant, with a one-line reproduction command.
#[derive(Debug, Clone)]
pub struct TortureFailure {
    /// `torture ...` command that replays the failing case.
    pub repro: String,
    /// Which invariant failed and how.
    pub message: String,
}

impl fmt::Display for TortureFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [repro: {}]", self.message, self.repro)
    }
}

impl std::error::Error for TortureFailure {}

/// Builds the [`FaultPlan`] a fault kind scripts. Exposed so recovery tests
/// can be re-expressed as torture plans against their own datasets.
pub fn build_plan(fault: FaultKind) -> Arc<FaultPlan> {
    let site = |name: &str| FaultTrigger::Site {
        name: name.to_string(),
        hit: 0,
    };
    let op0 = |op: FaultOp| FaultTrigger::OpIndex { op, index: 0 };
    let spec = match fault {
        FaultKind::CrashWalAppend => FaultSpec {
            trigger: site("wal_append"),
            action: FaultAction::Crash,
        },
        FaultKind::CrashGroupCommit => FaultSpec {
            trigger: site("wal_group_write"),
            action: FaultAction::Crash,
        },
        FaultKind::CrashFlushInstall => FaultSpec {
            trigger: site("flush_install"),
            action: FaultAction::Crash,
        },
        FaultKind::CrashMergeInstall => FaultSpec {
            trigger: site("merge_install"),
            action: FaultAction::Crash,
        },
        FaultKind::CrashCheckpoint => FaultSpec {
            trigger: site("checkpoint"),
            action: FaultAction::Crash,
        },
        FaultKind::TornWalWrite => FaultSpec {
            trigger: op0(FaultOp::Append),
            action: FaultAction::TornWrite { keep_bytes: 200 },
        },
        FaultKind::ShortWalWrite => FaultSpec {
            trigger: op0(FaultOp::Append),
            action: FaultAction::ShortWrite { keep_bytes: 10 },
        },
        FaultKind::TransientFlush => FaultSpec {
            trigger: op0(FaultOp::Append),
            action: FaultAction::TransientError,
        },
        FaultKind::TransientRead => FaultSpec {
            trigger: op0(FaultOp::Read),
            action: FaultAction::TransientError,
        },
    };
    FaultPlan::new(vec![spec])
}

/// Runs one case end to end. `Ok` means every invariant held.
pub fn run_case(case: &TortureCase) -> Result<CaseReport, TortureFailure> {
    Harness::new(case)?.run()
}

/// How the trigger phase's non-committed writes must look after recovery.
enum PendingRule {
    /// None of them survived (the fault preceded their durability).
    Absent,
    /// A torn WAL tail: some ordered prefix of them survived, whole-record.
    Prefix,
}

struct Trigger {
    pending: Vec<Record>,
    rule: PendingRule,
}

struct Harness<'a> {
    case: &'a TortureCase,
    ds: Arc<Dataset>,
    plan: Arc<FaultPlan>,
    state: CheckpointState,
    committed: BTreeMap<i64, Record>,
    pks: Vec<i64>,
    /// Logical-clock floor the recovered clock must not drop below
    /// (captured after the last committed write before the fault).
    clock_floor: u64,
    /// Primary keys handed out to trigger-phase records so far.
    extras: i64,
}

fn pk_of(rec: &Record) -> i64 {
    match rec.get(0) {
        Value::Int(i) => *i,
        other => panic!("tweet pk is Int, got {other:?}"),
    }
}

impl<'a> Harness<'a> {
    fn new(case: &'a TortureCase) -> Result<Self, TortureFailure> {
        let plan = build_plan(case.fault);
        let mut data_opts = case.device.options();
        data_opts.leaf_encoding = case.leaf_encoding;
        let data = Storage::new(data_opts);
        let wal = Storage::new(case.device.options());
        data.install_fault_plan(plan.clone());
        wal.install_fault_plan(plan.clone());

        let mut cfg = DatasetConfig::new(TweetGenerator::schema(), 0);
        cfg.strategy = case.strategy;
        cfg.secondary_indexes = vec![SecondaryIndexDef {
            name: "user_id".into(),
            field: 1,
        }];
        cfg.filter_field = Some(3);
        cfg.memory_budget = 96 * 1024;
        cfg.maintenance = if case.background {
            MaintenanceMode::Background { workers: 2 }
        } else {
            MaintenanceMode::Inline
        };
        let ds = Dataset::open(data, Some(wal), cfg).map_err(|e| TortureFailure {
            repro: case.repro(),
            message: format!("dataset open failed: {e}"),
        })?;
        Ok(Harness {
            case,
            ds,
            plan,
            state: CheckpointState::new(),
            committed: BTreeMap::new(),
            pks: Vec::new(),
            clock_floor: 0,
            extras: 0,
        })
    }

    fn fail(&self, message: impl Into<String>) -> TortureFailure {
        TortureFailure {
            repro: self.case.repro(),
            message: message.into(),
        }
    }

    fn chk<T>(&self, r: LsmResult<T>, what: &str) -> Result<T, TortureFailure> {
        r.map_err(|e| self.fail(format!("{what}: {e}")))
    }

    fn run(mut self) -> Result<CaseReport, TortureFailure> {
        self.ingest()?;
        self.stabilize()?;
        let trigger = self.trigger()?;
        if self.plan.faults_injected() == 0 {
            return Err(self.fail("scripted fault never fired"));
        }
        let replayed = match trigger {
            Some(t) => self.verify_crash(t)?,
            None => {
                self.verify_oracle(0, "post-transient")?;
                self.verify_accepts_writes()?;
                0
            }
        };
        Ok(CaseReport {
            events: self.plan.events(),
            faults_injected: self.plan.faults_injected(),
            replayed,
            live_records: self.committed.len(),
        })
    }

    // ---- phase 1: ingest ------------------------------------------------

    fn ingest(&mut self) -> Result<(), TortureFailure> {
        let mut wl = UpsertWorkload::new(
            TweetConfig {
                msg_min: 60,
                msg_max: 120,
                seed: self.case.seed,
            },
            0.25,
            UpdateDistribution::Uniform,
        );
        let mut queries = SelectivityQueries::new(self.case.seed);
        for i in 0..self.case.records {
            let op = wl.next_op();
            let rec = op.record().clone();
            let pk = pk_of(&rec);
            match op {
                Op::Insert(r) => {
                    if self.chk(self.ds.insert(&r), "ingest insert")? {
                        self.committed.insert(pk, rec);
                        self.pks.push(pk);
                    }
                }
                Op::Upsert(r) => {
                    self.chk(self.ds.upsert(&r), "ingest upsert")?;
                    if self.committed.insert(pk, rec).is_none() {
                        self.pks.push(pk);
                    }
                }
            }
            // Sprinkle deletes so recovery replays anti-matter too.
            if i % 13 == 7 && !self.pks.is_empty() {
                let victim = self.pks[(i * 7919) % self.pks.len()];
                self.chk(self.ds.delete(&Value::Int(victim)), "ingest delete")?;
                self.committed.remove(&victim);
            }
            // Keep parallel queries in flight while maintenance churns.
            if i % 256 == 255 {
                let (lo, hi) = queries.user_id_range(0.1);
                self.chk(
                    self.ds
                        .query("user_id")
                        .range(Value::Int(lo), Value::Int(hi))
                        .parallel(2)
                        .execute(),
                    "ingest query",
                )?;
            }
        }
        Ok(())
    }

    // ---- phase 2: stabilize ---------------------------------------------

    fn stabilize(&mut self) -> Result<(), TortureFailure> {
        self.chk(self.ds.maintenance().quiesce(), "quiesce")?;
        let wal = self.ds.wal().expect("torture datasets always have a WAL");
        self.chk(wal.force(), "wal force")?;
        self.chk(
            recovery::checkpoint(&self.ds, &self.state),
            "base checkpoint",
        )?;
        self.clock_floor = self.ds.clock().now();
        Ok(())
    }

    // ---- phase 3: trigger -----------------------------------------------

    fn extra_record(&mut self) -> Record {
        let i = self.extras;
        self.extras += 1;
        Record::new(vec![
            Value::Int(5_000_000 + i),
            Value::Int((i * 101) % USER_ID_DOMAIN),
            Value::Str(format!("loc-{i}")),
            Value::Int(900_000 + i),
            Value::Str(format!("torture extra {i}")),
        ])
    }

    /// Upserts `n` fresh records and forces the WAL, folding them into the
    /// committed oracle. Runs with the plan disarmed. Residual ingest
    /// memory is flushed first so the extras cannot trip the inline budget
    /// flush mid-loop — the caller decides when they reach disk.
    fn commit_extras(&mut self, n: usize) -> Result<(), TortureFailure> {
        self.chk(self.ds.flush_all(), "pre-extras flush")?;
        for _ in 0..n {
            let r = self.extra_record();
            self.chk(self.ds.upsert(&r), "committed extra upsert")?;
            self.committed.insert(pk_of(&r), r);
        }
        let wal = self.ds.wal().expect("wal");
        self.chk(wal.force(), "wal force for extras")?;
        self.clock_floor = self.ds.clock().now();
        Ok(())
    }

    fn expect_crash_err<T: std::fmt::Debug>(
        &self,
        r: LsmResult<T>,
        what: &str,
    ) -> Result<(), TortureFailure> {
        match r {
            Err(_) => {
                if self.plan.crash_fired() {
                    Ok(())
                } else {
                    Err(self.fail(format!("{what} failed but the crash never fired")))
                }
            }
            Ok(v) => Err(self.fail(format!(
                "{what} returned Ok({v:?}) despite a scripted crash"
            ))),
        }
    }

    /// Returns `Some(trigger)` when the case proceeds to crash recovery.
    fn trigger(&mut self) -> Result<Option<Trigger>, TortureFailure> {
        match self.case.fault {
            FaultKind::CrashWalAppend => {
                let rec = self.extra_record();
                self.plan.arm();
                let r = self.ds.upsert(&rec);
                self.plan.disarm();
                self.expect_crash_err(r, "upsert into crashing WAL")?;
                Ok(Some(Trigger {
                    pending: vec![rec],
                    rule: PendingRule::Absent,
                }))
            }
            FaultKind::CrashGroupCommit => {
                // Stage a whole group in the WAL's staging page (no-force:
                // nothing is promised durable yet), then crash the
                // group-commit leader at the `wal_group_write` site — the
                // group was staged, its page never reached the device. The
                // failed page is dropped, so every member of the group must
                // be absent after recovery while the committed prefix
                // before the group survives.
                let mut pending = Vec::new();
                for _ in 0..8 {
                    let r = self.extra_record();
                    self.chk(self.ds.upsert(&r), "staged group upsert")?;
                    pending.push(r);
                }
                let wal = self.ds.wal().expect("wal");
                self.plan.arm();
                let r = wal.force();
                self.plan.disarm();
                self.expect_crash_err(r, "group-commit force with crashing leader")?;
                Ok(Some(Trigger {
                    pending,
                    rule: PendingRule::Absent,
                }))
            }
            FaultKind::CrashFlushInstall => {
                // The committed extras are in the WAL but only in memory
                // components: the crash tears the install window between the
                // primary and the primary key index, and recovery must
                // still produce them.
                self.commit_extras(16)?;
                self.plan.arm();
                let r = self.ds.flush_all();
                self.plan.disarm();
                self.expect_crash_err(r, "flush with crashing install")?;
                Ok(Some(Trigger {
                    pending: Vec::new(),
                    rule: PendingRule::Absent,
                }))
            }
            FaultKind::CrashMergeInstall => {
                // Two flushed batches guarantee at least two mergeable
                // primary components.
                for _ in 0..2 {
                    self.commit_extras(12)?;
                    self.chk(self.ds.flush_all(), "pre-merge flush")?;
                }
                let n = self.ds.primary().num_disk_components();
                if n < 2 {
                    return Err(self.fail(format!(
                        "expected >= 2 primary components before the merge, found {n}"
                    )));
                }
                self.plan.arm();
                let r = self.ds.merge_correlated(MergeRange {
                    start: 0,
                    end: n - 1,
                });
                self.plan.disarm();
                self.expect_crash_err(r, "merge with crashing install")?;
                Ok(Some(Trigger {
                    pending: Vec::new(),
                    rule: PendingRule::Absent,
                }))
            }
            FaultKind::CrashCheckpoint => {
                self.commit_extras(8)?;
                self.plan.arm();
                let r = recovery::checkpoint(&self.ds, &self.state);
                self.plan.disarm();
                self.expect_crash_err(r, "checkpoint with scripted crash")?;
                Ok(Some(Trigger {
                    pending: Vec::new(),
                    rule: PendingRule::Absent,
                }))
            }
            FaultKind::TornWalWrite | FaultKind::ShortWalWrite => {
                // Buffer a handful of records on one WAL page, then tear
                // the page as the force writes it. The force itself
                // reports success — torn writes are only discovered by
                // recovery, like on real hardware.
                let mut pending = Vec::new();
                for _ in 0..8 {
                    let r = self.extra_record();
                    self.chk(self.ds.upsert(&r), "pending upsert")?;
                    pending.push(r);
                }
                let wal = self.ds.wal().expect("wal");
                self.plan.arm();
                self.chk(wal.force(), "torn wal force")?;
                self.plan.disarm();
                if self.plan.faults_injected() != 1 {
                    return Err(self.fail(
                        "the WAL force did not hit the scripted tear \
                         (page flushed earlier than expected)",
                    ));
                }
                Ok(Some(Trigger {
                    pending,
                    rule: PendingRule::Prefix,
                }))
            }
            FaultKind::TransientFlush => {
                self.commit_extras(16)?;
                self.plan.arm();
                match self.ds.flush_all() {
                    Err(e) if e.is_transient() => {}
                    Err(e) => {
                        return Err(
                            self.fail(format!("flush failed with a non-transient error: {e}"))
                        )
                    }
                    Ok(v) => {
                        return Err(self.fail(format!(
                            "flush returned Ok({v:?}) despite a scripted transient fault"
                        )))
                    }
                }
                self.plan.disarm();
                self.chk(self.ds.flush_all(), "flush retry after transient fault")?;
                if self.ds.is_poisoned() {
                    return Err(self.fail("transient flush failure poisoned the dataset"));
                }
                Ok(None)
            }
            FaultKind::TransientRead => {
                // Make sure the query has disk components to read.
                self.chk(self.ds.flush_all(), "pre-query flush")?;
                let q = || {
                    self.ds
                        .query("user_id")
                        .range(Value::Int(0), Value::Int(USER_ID_DOMAIN - 1))
                        .execute()
                };
                self.plan.arm();
                match q() {
                    Err(e) if e.is_transient() => {}
                    Err(e) => {
                        return Err(
                            self.fail(format!("query failed with a non-transient error: {e}"))
                        )
                    }
                    Ok(_) => {
                        return Err(self.fail(
                            "query succeeded despite a scripted transient read fault \
                             (nothing read the device?)",
                        ))
                    }
                }
                self.plan.disarm();
                let res = self.chk(q(), "query retry after transient fault")?;
                if res.len() != self.committed.len() {
                    return Err(self.fail(format!(
                        "retried query returned {} records, oracle has {}",
                        res.len(),
                        self.committed.len()
                    )));
                }
                Ok(None)
            }
        }
    }

    // ---- phase 4: verify ------------------------------------------------

    /// Crash, recover, and check every invariant; then crash and recover a
    /// second time to prove recovery is idempotent. Returns the first
    /// recovery's replay count.
    fn verify_crash(&mut self, trigger: Trigger) -> Result<u64, TortureFailure> {
        self.chk(
            recovery::simulate_crash(&self.ds, &self.state),
            "crash simulation",
        )?;
        let report = self.chk(recovery::recover(&self.ds, &self.state), "recovery")?;

        let clock = self.ds.clock().now();
        if clock < self.clock_floor {
            return Err(self.fail(format!(
                "recovered clock {clock} dropped below committed floor {}",
                self.clock_floor
            )));
        }
        let survivors = self.verify_pending(&trigger)?;
        self.verify_oracle(survivors, "first recovery")?;

        // Recovery must be idempotent: crash and recover again, nothing
        // may change.
        self.chk(
            recovery::simulate_crash(&self.ds, &self.state),
            "second crash simulation",
        )?;
        self.chk(recovery::recover(&self.ds, &self.state), "second recovery")?;
        let survivors2 = self.verify_pending(&trigger)?;
        if survivors2 != survivors {
            return Err(self.fail(format!(
                "repeated recovery changed the surviving WAL tail: \
                 {survivors} records, then {survivors2}"
            )));
        }
        self.verify_oracle(survivors, "second recovery")?;
        self.verify_accepts_writes()?;
        Ok(report.replayed)
    }

    /// Checks the trigger's non-committed writes against its rule and
    /// returns how many of them survived.
    fn verify_pending(&self, trigger: &Trigger) -> Result<usize, TortureFailure> {
        let mut survivors = 0usize;
        let mut in_prefix = true;
        for (i, rec) in trigger.pending.iter().enumerate() {
            let pk = pk_of(rec);
            let got = self.chk(self.ds.get(&Value::Int(pk)), "pending get")?;
            match (&trigger.rule, got) {
                (PendingRule::Absent, None) => {}
                (PendingRule::Absent, Some(_)) => {
                    return Err(self.fail(format!(
                        "uncommitted record #{i} (pk {pk}) survived the crash"
                    )));
                }
                (PendingRule::Prefix, Some(got)) => {
                    if !in_prefix {
                        return Err(self.fail(format!(
                            "torn WAL tail is not a prefix: record #{i} (pk {pk}) \
                             survived after an earlier record was lost"
                        )));
                    }
                    if got != *rec {
                        return Err(self.fail(format!(
                            "record #{i} (pk {pk}) was recovered torn: \
                             partial contents came back"
                        )));
                    }
                    survivors += 1;
                }
                (PendingRule::Prefix, None) => in_prefix = false,
            }
        }
        Ok(survivors)
    }

    /// Every committed record is present and intact, and the secondary
    /// index agrees with the oracle (`extra` accounts for a surviving torn
    /// WAL prefix).
    fn verify_oracle(&self, extra: usize, when: &str) -> Result<(), TortureFailure> {
        for (pk, rec) in &self.committed {
            match self.chk(self.ds.get(&Value::Int(*pk)), "oracle get")? {
                Some(got) if got == *rec => {}
                Some(_) => {
                    return Err(self.fail(format!(
                        "after {when}: committed record pk {pk} came back with \
                         different contents"
                    )));
                }
                None => {
                    return Err(
                        self.fail(format!("after {when}: committed record pk {pk} is missing"))
                    );
                }
            }
        }
        let res = self.chk(
            self.ds
                .query("user_id")
                .range(Value::Int(0), Value::Int(USER_ID_DOMAIN - 1))
                .parallel(2)
                .execute(),
            "oracle query",
        )?;
        let expected = self.committed.len() + extra;
        if res.len() != expected {
            return Err(self.fail(format!(
                "after {when}: secondary query returned {} records, expected {expected}",
                res.len()
            )));
        }
        // Primary-index filter scans must agree with the committed-prefix
        // oracle too, on whichever leaf encoding the case runs: the
        // unbounded predicate sees every live record, and the partitioned
        // path must return exactly what the serial path returns.
        let report = self.chk(self.ds.filter_scan().count(), "oracle filter scan")?;
        if report.matches != expected as u64 {
            return Err(self.fail(format!(
                "after {when}: filter scan matched {} records, expected {expected}",
                report.matches
            )));
        }
        let serial = self.chk(
            self.ds.filter_scan().records(),
            "oracle filter-scan records",
        )?;
        let partitioned = self.chk(
            self.ds.filter_scan().parallel(2).records(),
            "oracle partitioned filter scan",
        )?;
        if partitioned != serial {
            return Err(self.fail(format!(
                "after {when}: partitioned filter scan diverged from serial \
                 ({} vs {} records)",
                partitioned.len(),
                serial.len()
            )));
        }
        Ok(())
    }

    /// The dataset accepts and serves new writes after everything.
    fn verify_accepts_writes(&mut self) -> Result<(), TortureFailure> {
        let rec = self.extra_record();
        let pk = pk_of(&rec);
        self.chk(self.ds.upsert(&rec), "post-fault upsert")?;
        match self.chk(self.ds.get(&Value::Int(pk)), "post-fault get")? {
            Some(got) if got == rec => Ok(()),
            other => Err(self.fail(format!("post-fault write is not readable: got {other:?}"))),
        }
    }
}

/// All leaf-page encodings, in sweep order.
pub const LEAF_ENCODINGS: [LeafEncoding; 3] = [
    LeafEncoding::Plain,
    LeafEncoding::Prefix,
    LeafEncoding::Columnar,
];

/// The full sweep: every strategy x maintenance mode x device x fault kind
/// x leaf encoding.
pub fn full_sweep(seed: u64, records: usize) -> Vec<TortureCase> {
    let mut cases = Vec::new();
    for strategy in STRATEGIES {
        for background in [false, true] {
            for device in DeviceKind::ALL {
                for fault in FaultKind::ALL {
                    for leaf_encoding in LEAF_ENCODINGS {
                        cases.push(TortureCase {
                            strategy,
                            background,
                            device,
                            fault,
                            leaf_encoding,
                            seed,
                            records,
                        });
                    }
                }
            }
        }
    }
    cases
}

/// The CI smoke subset: two strategies on one device, all fault kinds,
/// both maintenance modes, all leaf encodings.
pub fn smoke_sweep(seed: u64, records: usize) -> Vec<TortureCase> {
    let mut cases = Vec::new();
    for strategy in [StrategyKind::Eager, StrategyKind::MutableBitmap] {
        for background in [false, true] {
            for fault in FaultKind::ALL {
                for leaf_encoding in LEAF_ENCODINGS {
                    cases.push(TortureCase {
                        strategy,
                        background,
                        device: DeviceKind::Ssd,
                        fault,
                        leaf_encoding,
                        seed,
                        records,
                    });
                }
            }
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(strategy: StrategyKind, fault: FaultKind) -> TortureCase {
        TortureCase {
            strategy,
            background: false,
            device: DeviceKind::Ssd,
            fault,
            leaf_encoding: LeafEncoding::Plain,
            seed: 42,
            records: 400,
        }
    }

    /// The acceptance window: a crash between the primary's component
    /// install and the primary key index's during a flush, for every
    /// strategy (the Mutable-bitmap flush installs through a different
    /// path than the build-then-install strategies).
    #[test]
    fn crash_between_primary_and_pk_flush_install_recovers() {
        for strategy in STRATEGIES {
            let c = case(strategy, FaultKind::CrashFlushInstall);
            let report = run_case(&c).unwrap_or_else(|f| panic!("{f}"));
            assert_eq!(report.events, vec!["site:flush_install#0 -> crash"]);
            assert!(report.replayed > 0, "{strategy:?}: rollback must replay");
        }
    }

    #[test]
    fn crash_in_merge_install_window_recovers() {
        for strategy in [StrategyKind::Eager, StrategyKind::MutableBitmap] {
            let c = case(strategy, FaultKind::CrashMergeInstall);
            let report = run_case(&c).unwrap_or_else(|f| panic!("{f}"));
            assert_eq!(report.events, vec!["site:merge_install#0 -> crash"]);
        }
    }

    #[test]
    fn every_fault_kind_passes_on_validation() {
        for fault in FaultKind::ALL {
            let c = case(StrategyKind::Validation, fault);
            run_case(&c).unwrap_or_else(|f| panic!("{f}"));
        }
    }

    #[test]
    fn background_maintenance_cases_pass() {
        for fault in [FaultKind::CrashFlushInstall, FaultKind::TransientFlush] {
            let c = TortureCase {
                background: true,
                ..case(StrategyKind::DeletedKeyBTree, fault)
            };
            run_case(&c).unwrap_or_else(|f| panic!("{f}"));
        }
    }

    /// Same seed + same plan => byte-identical fault schedule and report,
    /// on either leaf encoding.
    #[test]
    fn identical_cases_produce_identical_fault_schedules() {
        for leaf_encoding in LEAF_ENCODINGS {
            let c = TortureCase {
                leaf_encoding,
                ..case(StrategyKind::MutableBitmap, FaultKind::TornWalWrite)
            };
            let a = run_case(&c).unwrap_or_else(|f| panic!("{f}"));
            let b = run_case(&c).unwrap_or_else(|f| panic!("{f}"));
            assert_eq!(a, b);
        }
    }

    /// Crash recovery over compressed leaves: flushed components written
    /// in the prefix or columnar format survive the install-window crash
    /// and the recovered filter scans agree with the oracle.
    #[test]
    fn compressed_encoded_cases_recover() {
        for leaf_encoding in [LeafEncoding::Prefix, LeafEncoding::Columnar] {
            for fault in [FaultKind::CrashFlushInstall, FaultKind::TornWalWrite] {
                let c = TortureCase {
                    leaf_encoding,
                    ..case(StrategyKind::Validation, fault)
                };
                run_case(&c).unwrap_or_else(|f| panic!("{f}"));
            }
        }
    }

    #[test]
    fn repro_line_round_trips_through_the_parsers() {
        let c = case(StrategyKind::DeletedKeyBTree, FaultKind::ShortWalWrite);
        let repro = c.repro();
        assert!(repro.contains("--strategy deleted-key-btree"));
        assert!(repro.contains("--fault short-wal-write"));
        assert!(repro.contains("--leaf-encoding plain"));
        assert_eq!(parse_strategy("deleted-key-btree"), Some(c.strategy));
        assert_eq!(FaultKind::parse("short-wal-write"), Some(c.fault));
        assert_eq!(DeviceKind::parse("ssd"), Some(c.device));
        assert_eq!(LeafEncoding::parse("plain"), Some(c.leaf_encoding));
        assert_eq!(LeafEncoding::parse("prefix"), Some(LeafEncoding::Prefix));
        assert_eq!(
            LeafEncoding::parse("columnar"),
            Some(LeafEncoding::Columnar)
        );
    }

    #[test]
    fn sweeps_cover_the_advertised_matrix() {
        assert_eq!(full_sweep(1, 100).len(), 4 * 2 * 3 * 9 * 3);
        assert_eq!(smoke_sweep(1, 100).len(), 2 * 2 * 9 * 3);
        // Every repro line is unique — one line identifies one case.
        let mut lines: Vec<String> = full_sweep(1, 100).iter().map(|c| c.repro()).collect();
        lines.sort();
        lines.dedup();
        assert_eq!(lines.len(), 4 * 2 * 3 * 9 * 3);
    }
}
