//! Crash recovery walkthrough (Sections 2.2 and 5.2).
//!
//! ```sh
//! cargo run --release -p lsm-engine --example crash_recovery
//! ```
//!
//! A Mutable-bitmap dataset with a write-ahead log on a second device:
//! ingest, checkpoint, mutate bitmaps, crash, recover — verifying that
//! committed operations (including in-place bitmap deletes) survive and
//! uncommitted ones do not.

use lsm_common::{FieldType, Record, Schema, Value};
use lsm_engine::recovery::{checkpoint, recover, simulate_crash, CheckpointState};
use lsm_engine::{Dataset, DatasetConfig, StrategyKind};
use lsm_storage::{Storage, StorageOptions};

fn rec(id: i64, v: i64) -> Record {
    Record::new(vec![Value::Int(id), Value::Int(v)])
}

fn main() {
    let schema =
        Schema::new(vec![("id", FieldType::Int), ("balance", FieldType::Int)]).expect("schema");
    let mut cfg = DatasetConfig::new(schema, 0);
    cfg.strategy = StrategyKind::MutableBitmap;
    cfg.memory_budget = usize::MAX; // flush manually for the walkthrough

    let data_disk = Storage::new(StorageOptions::hdd(16 * 1024 * 1024));
    let log_disk = Storage::new(StorageOptions::hdd(1024 * 1024));
    let ds = Dataset::open(data_disk, Some(log_disk), cfg).expect("dataset");
    let state = CheckpointState::new();

    println!("1. ingest 1000 accounts and flush (durable in components)");
    for i in 0..1000 {
        ds.insert(&rec(i, 100)).expect("insert");
    }
    ds.flush_all().expect("flush");
    checkpoint(&ds, &state).expect("checkpoint");

    println!("2. update 50 accounts (bitmap deletes of the old versions) and commit");
    let mut batch = ds.batch();
    for i in 0..50 {
        batch = batch.upsert(&rec(i, 100 + i));
    }
    batch.commit().expect("batch commit"); // one WAL group for all 50
    ds.wal().expect("wal").force().expect("force"); // commit point
    let comp = &ds.primary().disk_components()[0];
    println!(
        "   bitmap bits set in the flushed component: {}",
        comp.bitmap().expect("bitmap").count_set()
    );

    println!("3. one more update that is NOT committed (WAL not forced)");
    ds.upsert(&rec(999, -1)).expect("upsert");

    println!("4. CRASH: memory components and unflushed bitmap pages are lost");
    simulate_crash(&ds, &state).expect("crash");
    let comp = &ds.primary().disk_components()[0];
    println!(
        "   bitmap bits after crash (reverted to checkpoint): {}",
        comp.bitmap().expect("bitmap").count_set()
    );
    assert!(ds.get(&Value::Int(5)).expect("get").is_some());

    println!("5. recover: replay committed log records beyond the component LSN");
    let report = recover(&ds, &state).expect("recover");
    println!(
        "   replayed {} operations ({} skipped as already durable)",
        report.replayed, report.skipped
    );

    // Committed updates are back...
    for i in 0..50 {
        let r = ds.get(&Value::Int(i)).expect("get").expect("present");
        assert_eq!(r.get(1), &Value::Int(100 + i), "account {i}");
    }
    let comp = &ds.primary().disk_components()[0];
    println!(
        "   bitmap bits after recovery: {}",
        comp.bitmap().expect("bitmap").count_set()
    );
    // ...and the uncommitted one is gone.
    assert_eq!(
        ds.get(&Value::Int(999))
            .expect("get")
            .expect("present")
            .get(1),
        &Value::Int(100 + 999 - 999) // original balance 100
    );
    println!("6. all committed state verified; uncommitted update correctly lost");
}
