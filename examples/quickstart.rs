//! Quickstart: create a dataset, ingest, and query.
//!
//! ```sh
//! cargo run --release -p lsm-engine --example quickstart
//! ```
//!
//! This walks the paper's running example (Figures 2-4): a `UserLocation`
//! dataset with a secondary index on `location` and a range filter on
//! `time`, under the Validation maintenance strategy.

use lsm_common::{FieldType, Record, Schema, Value};
use lsm_engine::{Dataset, DatasetConfig, SecondaryIndexDef, StrategyKind};
use lsm_storage::{Storage, StorageOptions};

fn main() {
    // UserLocation(UserID, Location, Time) — the paper's running example.
    let schema = Schema::new(vec![
        ("user_id", FieldType::Int),
        ("location", FieldType::Str),
        ("time", FieldType::Int),
    ])
    .expect("schema");

    let mut cfg = DatasetConfig::new(schema, 0);
    cfg.strategy = StrategyKind::Validation;
    cfg.secondary_indexes.push(SecondaryIndexDef {
        name: "location".into(),
        field: 1,
    });
    cfg.filter_field = Some(2);

    let storage = Storage::new(StorageOptions::hdd(64 * 1024 * 1024));
    let ds = Dataset::open(storage, None, cfg).expect("open dataset");

    // Ingest the initial records of Figure 2 as one atomic WriteBatch:
    // all three records commit under a single WAL group.
    let rec = |id: i64, loc: &str, t: i64| {
        Record::new(vec![Value::Int(id), Value::Str(loc.into()), Value::Int(t)])
    };
    let outcomes = ds
        .batch()
        .insert(&rec(101, "CA", 2015))
        .insert(&rec(102, "CA", 2016))
        .insert(&rec(103, "MA", 2017))
        .commit()
        .expect("batch commit");
    assert!(outcomes
        .iter()
        .all(|o| matches!(o, lsm_engine::BatchOpResult::Inserted)));
    ds.flush_all().expect("flush");

    // The upsert of Figure 4: user 101 moves to NY.
    ds.upsert(&rec(101, "NY", 2018)).expect("upsert");

    // Q1: all users in CA — must NOT return the stale CA entry for 101.
    // The builder resolves the right validation method for the Validation
    // strategy; nothing to configure.
    let q1 = ds.query("location").eq("CA").execute().expect("query");
    println!("users in CA:");
    for r in q1.records() {
        println!("  {} @ {} ({})", r.get(0), r.get(1), r.get(2));
    }
    assert_eq!(q1.len(), 1);
    assert_eq!(q1.records()[0].get(0), &Value::Int(102));

    // Q2: everything with Time < 2017 via the range filter.
    let q2 = lsm_engine::query::filter_scan_count(&ds, None, Some(&Value::Int(2016)))
        .expect("filter scan");
    println!(
        "records with time < 2017: {} (scanned {} components, pruned {})",
        q2.matches, q2.components_scanned, q2.components_pruned
    );
    assert_eq!(q2.matches, 1); // 102 only: 101's 2015 version is deleted

    // Point read by primary key.
    let u101 = ds.get(&Value::Int(101)).expect("get").expect("present");
    println!("user 101 is now in {}", u101.get(1));
    assert_eq!(u101.get(1), &Value::Str("NY".into()));

    // Q3: the same query as a bounded-memory stream — the shape to use
    // when a range query's results may not fit in RAM.
    let mut in_any_state = 0usize;
    for record in ds
        .query("location")
        .range("AA", "ZZ")
        .stream()
        .expect("stream")
    {
        let record = record.expect("stream record");
        std::hint::black_box(&record);
        in_any_state += 1;
    }
    println!("records streamed over all locations: {in_any_state}");
    assert_eq!(in_any_state, 3);

    println!(
        "simulated time spent: {:.3} ms",
        ds.storage().clock().now_secs() * 1e3
    );
}
