//! Tweet analytics: the paper's motivating workload (Section 1) end-to-end.
//!
//! ```sh
//! cargo run --release -p lsm-engine --example tweet_analytics
//! ```
//!
//! Ingests a stream of tweets with updates, then answers ad-hoc analytics
//! queries: secondary-index range queries on `user_id` at several
//! selectivities (comparing naive vs fully optimized index-to-index
//! navigation, Section 3.2) and time-window scans over the range filter.

use lsm_common::Value;
use lsm_engine::query::filter_scan_count;
use lsm_engine::{Dataset, DatasetConfig, SecondaryIndexDef, StrategyKind};
use lsm_storage::{Storage, StorageOptions};
use lsm_workload::{
    SelectivityQueries, TweetConfig, TweetGenerator, UpdateDistribution, UpsertWorkload,
};

fn main() {
    let n = 40_000;
    let dataset_bytes = n as u64 * 550;
    let mut cfg = DatasetConfig::new(TweetGenerator::schema(), 0);
    cfg.strategy = StrategyKind::Validation;
    cfg.secondary_indexes.push(SecondaryIndexDef {
        name: "user_id".into(),
        field: 1,
    });
    cfg.filter_field = Some(3); // creation_time
    cfg.memory_budget = (dataset_bytes / 100) as usize;
    cfg.merge.max_mergeable_bytes = dataset_bytes / 20;

    let storage = Storage::new(StorageOptions::hdd((dataset_bytes / 15) as usize));
    let ds = Dataset::open(storage, None, cfg).expect("dataset");

    println!("ingesting {n} tweets (10% updates)...");
    let mut workload =
        UpsertWorkload::new(TweetConfig::default(), 0.1, UpdateDistribution::Uniform);
    let max_time = {
        // Ingest through the WriteBatch API: 32 records per commit, each
        // batch one atomic unit (and one WAL group when a log is attached).
        let mut batch = ds.batch();
        for _ in 0..n {
            batch = match workload.next_op() {
                lsm_workload::Op::Upsert(r) => batch.upsert(&r),
                lsm_workload::Op::Insert(r) => batch.insert(&r),
            };
            if batch.len() == 32 {
                batch.commit().expect("batch commit");
                batch = ds.batch();
            }
        }
        if !batch.is_empty() {
            batch.commit().expect("batch commit");
        }
        workload.generator().time_watermark()
    };
    ds.flush_all().expect("flush");
    let s = ds.stats().snapshot();
    println!(
        "  {} records, {} flushes, {} merges, {} disk components",
        ds.stats().records_ingested(),
        s.flushes,
        s.merges,
        ds.primary().num_disk_components()
    );

    println!("\nuser-id queries (sim-ms, averaged over 3 ranges):");
    println!("selectivity\tnaive\toptimized");
    let mut queries = SelectivityQueries::new(11);
    for sel in [0.0001, 0.001, 0.01] {
        let mut times = [0.0f64; 2];
        // Naive vs fully optimized index-to-index navigation (§3.2); the
        // validation method is resolved from the strategy in both cases.
        for (i, naive) in [true, false].into_iter().enumerate() {
            let clock = ds.storage().clock();
            let t0 = clock.now_secs();
            for _ in 0..3 {
                let (lo, hi) = queries.user_id_range(sel);
                let mut q = ds.query("user_id").range(lo, hi);
                if naive {
                    q = q.naive();
                }
                let res = q.execute().expect("query");
                std::hint::black_box(res.len());
            }
            times[i] = (clock.now_secs() - t0) / 3.0 * 1e3;
        }
        println!("{:.2}%\t\t{:.2}\t{:.2}", sel * 100.0, times[0], times[1]);
    }

    // Stream the heaviest range with bounded memory: the per-batch record
    // fetch reuses the same batching machinery as the collecting path.
    let (lo, hi) = queries.user_id_range(0.01);
    let mut stream = ds.query("user_id").range(lo, hi).stream().expect("stream");
    let streamed = (&mut stream).filter(|r| r.is_ok()).count();
    println!(
        "\nstreamed {} records in {} batches (≤{} keys per batch)",
        streamed,
        stream.batches_fetched(),
        stream.keys_per_batch()
    );

    println!("\ntime-window scans (range filter on creation_time):");
    for (name, lo, hi) in [
        (
            "most recent day ",
            Some(Value::Int(max_time - max_time / 730)),
            None,
        ),
        ("oldest day      ", None, Some(Value::Int(max_time / 730))),
    ] {
        ds.storage().clear_cache();
        let clock = ds.storage().clock();
        let t0 = clock.now_secs();
        let r = filter_scan_count(&ds, lo.as_ref(), hi.as_ref()).expect("scan");
        println!(
            "  {name}: {} tweets, {}/{} components pruned, {:.2} sim-ms",
            r.matches,
            r.components_pruned,
            r.components_pruned + r.components_scanned,
            (clock.now_secs() - t0) * 1e3
        );
    }

    report_io(&ds);
}

fn report_io(ds: &Dataset) {
    let io = ds.storage().stats();
    println!(
        "\nI/O totals: {} random reads, {} sequential reads, {:.1}% cache hits, {} pages written",
        io.rand_reads,
        io.seq_reads,
        io.cache_hit_ratio() * 100.0,
        io.pages_written
    );
}
