//! Strategy comparison: one workload, four maintenance strategies.
//!
//! ```sh
//! cargo run --release -p lsm-engine --example strategy_comparison
//! ```
//!
//! Runs the same update-heavy tweet workload under Eager, Validation,
//! Mutable-bitmap, and Deleted-key B+-tree, then compares ingestion time,
//! query time, and (for Validation) the effect of running an index repair —
//! a miniature of the paper's Section 6 story.

use lsm_engine::{Dataset, DatasetConfig, SecondaryIndexDef, StrategyKind};
use lsm_storage::{Storage, StorageOptions};
use lsm_workload::{
    SelectivityQueries, TweetConfig, TweetGenerator, UpdateDistribution, UpsertWorkload,
};
use std::sync::Arc;

fn build(strategy: StrategyKind, n: usize) -> Arc<Dataset> {
    let dataset_bytes = n as u64 * 550;
    let mut cfg = DatasetConfig::new(TweetGenerator::schema(), 0);
    cfg.strategy = strategy;
    cfg.secondary_indexes.push(SecondaryIndexDef {
        name: "user_id".into(),
        field: 1,
    });
    cfg.filter_field = Some(3);
    cfg.memory_budget = (dataset_bytes / 100) as usize;
    cfg.merge.max_mergeable_bytes = dataset_bytes / 20;
    cfg.merge_repair = false; // repair explicitly below
    let storage = Storage::new(StorageOptions::hdd((dataset_bytes / 15) as usize));
    Dataset::open(storage, None, cfg).expect("dataset")
}

fn query_time(ds: &Dataset) -> f64 {
    let mut q = SelectivityQueries::new(3);
    let clock = ds.storage().clock();
    let t0 = clock.now_secs();
    for _ in 0..3 {
        let (lo, hi) = q.user_id_range(0.001);
        // Validation is resolved from the dataset's strategy.
        let res = ds.query("user_id").range(lo, hi).execute().expect("query");
        std::hint::black_box(res.len());
    }
    (clock.now_secs() - t0) / 3.0
}

fn main() {
    let n = 30_000;
    println!("workload: {n} upserts, 25% uniform updates\n");
    println!("strategy            ingest(sim-s)  query(sim-s)  after-repair(sim-s)");
    for strategy in [
        StrategyKind::Eager,
        StrategyKind::Validation,
        StrategyKind::MutableBitmap,
        StrategyKind::DeletedKeyBTree,
    ] {
        let ds = build(strategy, n);
        let mut workload =
            UpsertWorkload::new(TweetConfig::default(), 0.25, UpdateDistribution::Uniform);
        let clock = ds.storage().clock().clone();
        let t0 = clock.now_secs();
        let mut batch = ds.batch();
        for _ in 0..n {
            batch = match workload.next_op() {
                lsm_workload::Op::Upsert(r) => batch.upsert(&r),
                lsm_workload::Op::Insert(r) => batch.insert(&r),
            };
            if batch.len() == 32 {
                batch.commit().expect("batch commit");
                batch = ds.batch();
            }
        }
        if !batch.is_empty() {
            batch.commit().expect("batch commit");
        }
        ds.flush_all().expect("flush");
        let ingest = clock.now_secs() - t0;

        let q_before = query_time(&ds);

        // Repair and re-measure (lazy strategies benefit; Eager is a no-op).
        let q_after = if strategy == StrategyKind::Eager {
            q_before
        } else {
            ds.maintenance().repair_all().expect("repair");
            query_time(&ds)
        };

        println!(
            "{:<20}{:>12.2}{:>14.3}{:>18.3}",
            format!("{strategy:?}"),
            ingest,
            q_before,
            q_after
        );
    }
    println!("\nExpected: Eager ingests slowest but queries fastest; the lazy");
    println!("strategies ingest several times faster and close the query gap");
    println!("after an index repair.");
}
