//! Offline stand-in for the `parking_lot` crate, implementing the subset of
//! its API used by this workspace on top of `std::sync`.
//!
//! Differences from `std` that callers rely on:
//! * `lock()` / `read()` / `write()` return guards directly (no
//!   `Result` / poisoning — a poisoned `std` lock is unwrapped here, since a
//!   panic while holding a lock is already fatal for these use cases);
//! * `Condvar::wait` takes `&mut MutexGuard`.

use std::sync;

/// A mutex whose `lock` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read` / `write` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable compatible with [`Mutex`], taking the guard by
/// `&mut` as parking_lot does.
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Temporarily move the guard out so std's by-value wait can run,
        // then put the reacquired guard back.
        replace_with(guard, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_with(guard, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0 // parking_lot returns the woken count; callers here ignore it
    }
}

/// Result of [`Condvar::wait_for`], mirroring parking_lot's type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Replaces `*slot` through a by-value transform, aborting on panic (the
/// transform reacquires a lock, so unwinding through it cannot leave a valid
/// guard behind).
fn replace_with<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    struct Abort;
    impl Drop for Abort {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    let bomb = Abort;
    unsafe {
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
    }
    std::mem::forget(bomb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
