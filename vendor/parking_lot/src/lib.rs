//! Offline stand-in for the `parking_lot` crate, implementing the subset of
//! its API used by this workspace on top of `std::sync`.
//!
//! Differences from `std` that callers rely on:
//! * `lock()` / `read()` / `write()` return guards directly (no
//!   `Result` / poisoning — a poisoned `std` lock is unwrapped here, since a
//!   panic while holding a lock is already fatal for these use cases);
//! * `Condvar::wait` takes `&mut MutexGuard`.
//!
//! # Lock-order checking (`--cfg lock_order_check`)
//!
//! Because every lock in the workspace is constructed through this shim, it
//! doubles as a lockdep-style deadlock detector. Compiling the workspace with
//! `RUSTFLAGS="--cfg lock_order_check"` turns on instrumentation:
//!
//! * every [`Mutex`] / [`RwLock`] belongs to a **lock class** keyed by the
//!   `#[track_caller]` construction site of `new()` — all instances born at
//!   one source location (e.g. the 16 key-lock shards) share a class;
//! * each thread keeps a stack of currently-held classes, and each blocking
//!   acquisition records `held → acquired` edges into one global directed
//!   graph shared by the whole process;
//! * adding an edge runs incremental cycle detection. A cycle means two code
//!   paths take the same pair of lock classes in opposite orders — a
//!   *potential* deadlock — and the acquisition **panics deterministically**
//!   on the first single-threaded run that exercises both orders, naming the
//!   construction site of every class on the cycle and the acquisition sites
//!   that established the conflicting edges;
//! * acquiring a class already held by the same thread (a different instance
//!   of the same class, or the same lock reentrantly) panics as a
//!   **reentrant acquisition** unless wrapped in [`ordered_acquisition`];
//! * [`Condvar::wait`] / [`Condvar::wait_for`] pop the mutex's class for the
//!   duration of the wait (the lock is genuinely released) and re-push it —
//!   re-running the edge check — when the wait returns.
//!
//! Without the cfg every type compiles down to a plain newtype over
//! `std::sync` and the guards are bare type aliases: zero cost in release.
//!
//! The sanctioned class hierarchy for this workspace is documented in
//! ARCHITECTURE.md ("Lock hierarchy"); docs/OPERATIONS.md describes running
//! the test suite instrumented and reading a cycle report.

use std::sync;

#[cfg(lock_order_check)]
use std::panic::Location;

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    #[cfg(lock_order_check)]
    class: &'static Location<'static>,
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
#[cfg(not(lock_order_check))]
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Guard returned by [`Mutex::lock`]; pops its lock class on drop.
#[cfg(lock_order_check)]
pub struct MutexGuard<'a, T: ?Sized> {
    held: order::Held,
    inner: sync::MutexGuard<'a, T>,
}

#[cfg(lock_order_check)]
impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(lock_order_check)]
impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(lock_order_check)]
impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> Mutex<T> {
    /// Creates a mutex. Under `lock_order_check` the caller's source
    /// location becomes the lock class of every instance built here.
    #[track_caller]
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(lock_order_check)]
            class: Location::caller(),
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[cfg_attr(lock_order_check, track_caller)]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(lock_order_check)]
        {
            let held = order::acquire(self.class, Location::caller());
            MutexGuard {
                held,
                inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
            }
        }
        #[cfg(not(lock_order_check))]
        {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Non-blocking acquisition attempt. A `try_lock` cannot participate in
    /// a deadlock as the blocked party, so under `lock_order_check` a
    /// success is pushed as held (it constrains *later* blocking
    /// acquisitions) but adds no incoming edges itself.
    #[cfg_attr(lock_order_check, track_caller)]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }?;
        #[cfg(lock_order_check)]
        {
            Some(MutexGuard {
                held: order::acquire_try(self.class),
                inner,
            })
        }
        #[cfg(not(lock_order_check))]
        {
            Some(inner)
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read` / `write` return guards directly.
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    #[cfg(lock_order_check)]
    class: &'static Location<'static>,
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
#[cfg(not(lock_order_check))]
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
#[cfg(not(lock_order_check))]
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Guard returned by [`RwLock::read`]; pops its lock class on drop.
#[cfg(lock_order_check)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[allow(dead_code)] // held for its Drop
    held: order::Held,
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Guard returned by [`RwLock::write`]; pops its lock class on drop.
#[cfg(lock_order_check)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[allow(dead_code)] // held for its Drop
    held: order::Held,
    inner: sync::RwLockWriteGuard<'a, T>,
}

#[cfg(lock_order_check)]
impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(lock_order_check)]
impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(lock_order_check)]
impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(lock_order_check)]
impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(lock_order_check)]
impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock. Under `lock_order_check` the caller's
    /// source location becomes the lock class (readers and writers share
    /// it — the detector is deliberately conservative about read locks,
    /// since `std` readers can deadlock against a queued writer).
    #[track_caller]
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(lock_order_check)]
            class: Location::caller(),
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    #[cfg_attr(lock_order_check, track_caller)]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(lock_order_check)]
        {
            let held = order::acquire(self.class, Location::caller());
            RwLockReadGuard {
                held,
                inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
            }
        }
        #[cfg(not(lock_order_check))]
        {
            self.inner.read().unwrap_or_else(|e| e.into_inner())
        }
    }

    #[cfg_attr(lock_order_check, track_caller)]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(lock_order_check)]
        {
            let held = order::acquire(self.class, Location::caller());
            RwLockWriteGuard {
                held,
                inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
            }
        }
        #[cfg(not(lock_order_check))]
        {
            self.inner.write().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Non-blocking read attempt (see [`Mutex::try_lock`] for the
    /// `lock_order_check` semantics).
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }?;
        #[cfg(lock_order_check)]
        {
            Some(RwLockReadGuard {
                held: order::acquire_try(self.class),
                inner,
            })
        }
        #[cfg(not(lock_order_check))]
        {
            Some(inner)
        }
    }

    /// Non-blocking write attempt (see [`Mutex::try_lock`] for the
    /// `lock_order_check` semantics).
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }?;
        #[cfg(lock_order_check)]
        {
            Some(RwLockWriteGuard {
                held: order::acquire_try(self.class),
                inner,
            })
        }
        #[cfg(not(lock_order_check))]
        {
            Some(inner)
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable compatible with [`Mutex`], taking the guard by
/// `&mut` as parking_lot does.
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified. Under `lock_order_check` the mutex's class is
    /// popped from the held stack for the duration of the wait (the lock is
    /// genuinely released) and re-pushed — re-running the order check — on
    /// reacquisition.
    #[cfg_attr(lock_order_check, track_caller)]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        #[cfg(lock_order_check)]
        let class = {
            let class = guard.held.class;
            order::release_for_wait(class);
            class
        };
        // Temporarily move the guard out so std's by-value wait can run,
        // then put the reacquired guard back.
        #[cfg(lock_order_check)]
        let slot = &mut guard.inner;
        #[cfg(not(lock_order_check))]
        let slot = guard;
        replace_with(slot, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
        #[cfg(lock_order_check)]
        order::reacquire_after_wait(class, Location::caller());
    }

    /// Like [`Condvar::wait`] with a timeout; same `lock_order_check`
    /// pop/re-push behavior.
    #[cfg_attr(lock_order_check, track_caller)]
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        #[cfg(lock_order_check)]
        let class = {
            let class = guard.held.class;
            order::release_for_wait(class);
            class
        };
        #[cfg(lock_order_check)]
        let slot = &mut guard.inner;
        #[cfg(not(lock_order_check))]
        let slot = guard;
        let mut timed_out = false;
        replace_with(slot, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = r.timed_out();
            g
        });
        #[cfg(lock_order_check)]
        order::reacquire_after_wait(class, Location::caller());
        WaitTimeoutResult(timed_out)
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0 // parking_lot returns the woken count; callers here ignore it
    }
}

/// Result of [`Condvar::wait_for`], mirroring parking_lot's type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Marks a scope whose same-class lock acquisitions follow a deterministic
/// total order (e.g. "all memtable shards, in index order" or "key locks in
/// sorted key order") and therefore cannot deadlock against each other.
///
/// Under `lock_order_check` this suppresses the reentrant-same-class panic
/// for the dynamic extent of `f` on this thread; cross-class ordering is
/// still checked and recorded. Without the cfg it is a direct call to `f`.
///
/// This is an escape hatch for *documented* ordered acquisition protocols
/// only — each use site must say what the order is. An unordered use hides
/// real deadlocks from the detector.
pub fn ordered_acquisition<R>(f: impl FnOnce() -> R) -> R {
    #[cfg(lock_order_check)]
    {
        order::with_ordered_scope(f)
    }
    #[cfg(not(lock_order_check))]
    {
        f()
    }
}

/// Number of lock classes the current thread holds (test hook; only
/// meaningful under `lock_order_check`).
#[cfg(lock_order_check)]
#[doc(hidden)]
pub fn held_lock_classes() -> usize {
    order::held_count()
}

/// Lock-order detector internals: class interning, per-thread held stacks,
/// the global edge graph and its incremental cycle check.
#[cfg(lock_order_check)]
mod order {
    use std::cell::{Cell, RefCell};
    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::{LazyLock, Mutex};

    type ClassId = u32;
    type Loc = &'static Location<'static>;

    /// One held-stack entry; popped (last occurrence of the class) on drop.
    pub(crate) struct Held {
        pub(crate) class: ClassId,
    }

    impl Drop for Held {
        fn drop(&mut self) {
            pop(self.class);
        }
    }

    struct Registry {
        /// Construction-site key → class id.
        ids: HashMap<(&'static str, u32, u32), ClassId>,
        /// Class id → construction site.
        ctors: Vec<Loc>,
        /// `edges[holder]` = classes acquired while `holder` was held.
        edges: Vec<Vec<ClassId>>,
        /// First acquisition site that established each `(holder, acquired)`
        /// edge — the witness printed in a cycle report.
        witness: HashMap<(ClassId, ClassId), Loc>,
    }

    static REGISTRY: LazyLock<Mutex<Registry>> = LazyLock::new(|| {
        Mutex::new(Registry {
            ids: HashMap::new(),
            ctors: Vec::new(),
            edges: Vec::new(),
            witness: HashMap::new(),
        })
    });

    thread_local! {
        static HELD: RefCell<Vec<ClassId>> = const { RefCell::new(Vec::new()) };
        static ORDERED_DEPTH: Cell<usize> = const { Cell::new(0) };
    }

    impl Registry {
        fn intern(&mut self, ctor: Loc) -> ClassId {
            let key = (ctor.file(), ctor.line(), ctor.column());
            if let Some(&id) = self.ids.get(&key) {
                return id;
            }
            let id = self.ctors.len() as ClassId;
            self.ids.insert(key, id);
            self.ctors.push(ctor);
            self.edges.push(Vec::new());
            id
        }

        /// Depth-first path `from → … → to` over the edge graph, if any.
        fn path(&self, from: ClassId, to: ClassId) -> Option<Vec<ClassId>> {
            let mut visited = vec![false; self.ctors.len()];
            let mut stack = vec![(from, 0usize)];
            let mut trail = vec![from];
            visited[from as usize] = true;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                if node == to {
                    return Some(trail);
                }
                let outs = &self.edges[node as usize];
                let mut advanced = false;
                while *next < outs.len() {
                    let n = outs[*next];
                    *next += 1;
                    if !visited[n as usize] {
                        visited[n as usize] = true;
                        stack.push((n, 0));
                        trail.push(n);
                        advanced = true;
                        break;
                    }
                }
                if !advanced {
                    stack.pop();
                    trail.pop();
                }
            }
            None
        }

        fn cycle_report(&self, holder: ClassId, acquired: ClassId, site: Loc) -> String {
            let mut msg = format!(
                "lock-order cycle detected: acquiring lock class constructed at \
                 {acq_ctor} (acquisition at {site}) while holding lock class \
                 constructed at {hold_ctor}, but the reverse order already exists:\n",
                acq_ctor = self.ctors[acquired as usize],
                hold_ctor = self.ctors[holder as usize],
            );
            if let Some(path) = self.path(acquired, holder) {
                for pair in path.windows(2) {
                    let w = self.witness.get(&(pair[0], pair[1]));
                    msg.push_str(&format!(
                        "  class {} -> class {} (established at {})\n",
                        self.ctors[pair[0] as usize],
                        self.ctors[pair[1] as usize],
                        w.map(|l| l.to_string()).unwrap_or_else(|| "?".into()),
                    ));
                }
            }
            msg.push_str(
                "fix: acquire these classes in the sanctioned order \
                 (ARCHITECTURE.md, \"Lock hierarchy\"), or wrap a documented \
                 deterministic-order protocol in parking_lot::ordered_acquisition",
            );
            msg
        }
    }

    /// Records a blocking acquisition of `ctor`'s class at `site`: panics on
    /// reentrant same-class acquisition (outside an ordered scope) or on a
    /// lock-order cycle, otherwise adds `held → class` edges and pushes the
    /// class. Called *before* blocking on the real lock, so a panic never
    /// strands a held lock.
    pub(crate) fn acquire(ctor: Loc, site: Loc) -> Held {
        let held: Vec<ClassId> = HELD.with(|h| h.borrow().clone());
        let ordered = ORDERED_DEPTH.with(|d| d.get()) > 0;
        let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        let class = reg.intern(ctor);
        if held.contains(&class) && !ordered {
            panic!(
                "lock-order violation: reentrant acquisition of lock class \
                 constructed at {} (acquisition at {site}); a second instance \
                 of this class is already held by this thread. If the \
                 acquisitions follow a deterministic total order, wrap them \
                 in parking_lot::ordered_acquisition and document the order.",
                reg.ctors[class as usize],
            );
        }
        for &h in &held {
            if h == class || reg.edges[h as usize].contains(&class) {
                continue;
            }
            if reg.path(class, h).is_some() {
                let msg = reg.cycle_report(h, class, site);
                drop(reg);
                panic!("{msg}");
            }
            reg.edges[h as usize].push(class);
            reg.witness.insert((h, class), site);
        }
        drop(reg);
        HELD.with(|h| h.borrow_mut().push(class));
        Held { class }
    }

    /// Records a successful non-blocking acquisition: pushed as held (it
    /// constrains later blocking acquisitions) but no incoming edges and no
    /// cycle check — a `try_lock` cannot block, so it cannot close a
    /// deadlock cycle.
    pub(crate) fn acquire_try(ctor: Loc) -> Held {
        let class = {
            let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
            reg.intern(ctor)
        };
        HELD.with(|h| h.borrow_mut().push(class));
        Held { class }
    }

    /// Pops `class` for the duration of a `Condvar` wait.
    pub(crate) fn release_for_wait(class: ClassId) {
        pop(class);
    }

    /// Re-pushes `class` when a `Condvar` wait returns, re-running the edge
    /// check (the reacquisition is a genuine blocking acquisition).
    pub(crate) fn reacquire_after_wait(class: ClassId, site: Loc) {
        let ctor = {
            let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
            reg.ctors[class as usize]
        };
        // `acquire` pushes and returns a Held whose drop would double-pop;
        // forget it — the original guard's Held owns the pop.
        std::mem::forget(acquire(ctor, site));
    }

    fn pop(class: ClassId) {
        // `try_with`: guards dropped during thread teardown must not panic.
        let _ = HELD.try_with(|h| {
            let mut held = h.borrow_mut();
            if let Some(i) = held.iter().rposition(|&c| c == class) {
                held.remove(i);
            }
        });
    }

    /// Runs `f` with the reentrant-same-class check suppressed (panic-safe).
    pub(crate) fn with_ordered_scope<R>(f: impl FnOnce() -> R) -> R {
        struct Scope;
        impl Drop for Scope {
            fn drop(&mut self) {
                ORDERED_DEPTH.with(|d| d.set(d.get() - 1));
            }
        }
        ORDERED_DEPTH.with(|d| d.set(d.get() + 1));
        let _scope = Scope;
        f()
    }

    pub(crate) fn held_count() -> usize {
        HELD.with(|h| h.borrow().len())
    }
}

/// Replaces `*slot` through a by-value transform, aborting on panic (the
/// transform reacquires a lock, so unwinding through it cannot leave a valid
/// guard behind).
fn replace_with<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    struct Abort;
    impl Drop for Abort {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    let bomb = Abort;
    unsafe {
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
    }
    std::mem::forget(bomb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Arc::new(Mutex::new(0));
        let g = m.lock();
        let m2 = m.clone();
        std::thread::spawn(move || assert!(m2.try_lock().is_none()))
            .join()
            .unwrap();
        drop(g);
        assert!(m.try_lock().is_some());
    }
}

/// Detector-only tests; they run in the instrumented CI `sanity` job
/// (`RUSTFLAGS="--cfg lock_order_check"`), while the plain tests above run
/// in both modes — the behavior-identity half of the contract.
#[cfg(all(test, lock_order_check))]
mod order_tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe, Location};

    /// `file:line:` prefix of a `Location` captured on the same source line
    /// as a lock construction (columns differ; the detector prints
    /// `file:line:col`).
    fn at(loc: &'static Location<'static>) -> String {
        format!("{}:{}:", loc.file(), loc.line())
    }

    fn panic_message(r: std::thread::Result<impl Sized>) -> String {
        match r {
            Ok(_) => panic!("expected a lock-order panic"),
            Err(e) => e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .expect("panic payload is a string"),
        }
    }

    #[test]
    fn inversion_panics_with_both_construction_sites() {
        let (a, la) = (Mutex::new(()), Location::caller());
        let (b, lb) = (Mutex::new(()), Location::caller());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // establishes a -> b
        }
        let _gb = b.lock();
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| a.lock())));
        assert!(msg.contains("lock-order cycle"), "message: {msg}");
        assert!(msg.contains(&at(la)), "ctor of a missing: {msg}");
        assert!(msg.contains(&at(lb)), "ctor of b missing: {msg}");
    }

    #[test]
    fn three_class_cycle_is_found() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let c = Mutex::new(());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // a -> b
        }
        {
            let _gb = b.lock();
            let _gc = c.lock(); // b -> c
        }
        let _gc = c.lock();
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| a.lock())));
        assert!(msg.contains("lock-order cycle"), "message: {msg}");
    }

    #[test]
    fn reentrant_same_class_is_reported() {
        let mut pair = Vec::new();
        for _ in 0..2 {
            pair.push((Mutex::new(()), Location::caller())); // one site = one class
        }
        let l = pair[0].1;
        let _g0 = pair[0].0.lock();
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| pair[1].0.lock())));
        assert!(msg.contains("reentrant acquisition"), "message: {msg}");
        assert!(msg.contains(&at(l)), "ctor site missing: {msg}");
    }

    #[test]
    fn ordered_acquisition_permits_same_class_nesting() {
        let shards: Vec<Mutex<u32>> = (0..4).map(|_| Mutex::new(0)).collect();
        let guards = ordered_acquisition(|| shards.iter().map(|m| m.lock()).collect::<Vec<_>>());
        assert_eq!(guards.len(), 4);
        drop(guards);
        assert_eq!(held_lock_classes(), 0);
    }

    #[test]
    fn rwlock_read_participates_in_ordering() {
        let (a, la) = (RwLock::new(()), Location::caller());
        let (b, lb) = (Mutex::new(()), Location::caller());
        {
            let _ga = a.read();
            let _gb = b.lock(); // a -> b
        }
        let _gb = b.lock();
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| a.read())));
        assert!(msg.contains("lock-order cycle"), "message: {msg}");
        assert!(msg.contains(&at(la)) && msg.contains(&at(lb)), "{msg}");
    }

    #[test]
    fn condvar_wait_pops_and_repushes_its_mutex() {
        let outer = Mutex::new(());
        let m = Mutex::new(());
        let cv = Condvar::new();
        let _go = outer.lock();
        let mut g = m.lock();
        assert_eq!(held_lock_classes(), 2);
        // Nobody notifies: the wait must time out, popping the mutex class
        // for its duration and re-pushing exactly one entry on return.
        let r = cv.wait_for(&mut g, std::time::Duration::from_millis(10));
        assert!(r.timed_out());
        assert_eq!(held_lock_classes(), 2, "wait must re-push its mutex");
        drop(g);
        assert_eq!(held_lock_classes(), 1, "guard drop must pop once");
    }

    #[test]
    fn try_lock_adds_no_incoming_edge() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        {
            let _ga = a.lock();
            let _gb = b.try_lock().unwrap(); // no b-incoming edge recorded
        }
        {
            let _gb = b.lock();
            let _ga = a.lock(); // b -> a: fine, no a -> b edge exists
        }
    }

    #[test]
    fn guard_drop_restores_held_stack() {
        let a = Mutex::new(());
        let b = RwLock::new(());
        let ga = a.lock();
        let gb = b.write();
        assert_eq!(held_lock_classes(), 2);
        drop(ga); // out-of-order drop
        assert_eq!(held_lock_classes(), 1);
        drop(gb);
        assert_eq!(held_lock_classes(), 0);
    }
}
