//! Offline stand-in for the `rand` crate: the subset of its API used by this
//! workspace (`StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen`, `gen_range`, `gen_bool`).
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic per
//! seed, but NOT the same stream as the real crate's ChaCha12-based `StdRng`.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps a random word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges usable with `rng.gen_range`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// The user-facing sampling methods.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(b'a'..=b'z');
            assert!(v.is_ascii_lowercase());
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
