//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset used by this workspace: the [`proptest!`] /
//! [`prop_oneof!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros, the
//! [`strategy::Strategy`] trait with `prop_map`, [`strategy::Just`],
//! `any::<T>()`, integer-range strategies, a simple `".{lo,hi}"` string
//! pattern strategy, and `collection::{vec, btree_map}`.
//!
//! Semantics: random-input property testing with a per-test deterministic
//! seed (derived from the test name). There is **no shrinking** — a failing
//! case panics with the full debug rendering of its inputs.

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::rc::Rc;

    /// A generator of test inputs.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A type-erased strategy (what `prop_oneof!` builds on).
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Lazy `prop_map`.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union of boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        entries: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T: Debug> Union<T> {
        pub fn new_weighted(entries: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!entries.is_empty(), "prop_oneof! needs at least one arm");
            let total = entries.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { entries, total }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.rng().gen_range(0..self.total);
            for (w, s) in &self.entries {
                if pick < u64::from(*w) {
                    return s.generate(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weight accounting")
        }
    }

    /// Values generatable over their whole domain via `any::<T>()`.
    pub trait Arbitrary: Debug + Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.rng().gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng().gen::<bool>()
        }
    }

    /// The `any::<T>()` strategy.
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// String strategy from a pattern. Only the `.{lo,hi}` shape that this
    /// workspace uses is honoured (a string of `lo..=hi` arbitrary chars);
    /// anything else falls back to 0..=16 chars.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 16));
            let len = rng.rng().gen_range(lo..=hi);
            (0..len).map(|_| random_char(rng)).collect()
        }
    }

    fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    fn random_char(rng: &mut TestRng) -> char {
        let r = rng.rng();
        match r.gen_range(0..10u32) {
            // Mostly printable ASCII ...
            0..=6 => char::from(r.gen_range(0x20..0x7Fu8)),
            // ... some arbitrary Unicode scalar values ...
            7 | 8 => loop {
                if let Some(c) = char::from_u32(r.gen_range(0..0x11_0000u32)) {
                    break c;
                }
            },
            // ... and control characters (including NUL) to stress escaping.
            _ => char::from(r.gen_range(0x00..0x20u8)),
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Sizes accepted by the collection strategies.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// `vec(element, size)` — a vector of independently generated elements.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `btree_map(key, value, size)` — up to `size` entries (duplicate keys
    /// collapse, as in real proptest).
    pub fn btree_map<K: Strategy, V: Strategy, Z: SizeRange>(
        key: K,
        value: V,
        size: Z,
    ) -> BTreeMapStrategy<K, V, Z> {
        BTreeMapStrategy { key, value, size }
    }

    pub struct BTreeMapStrategy<K, V, Z> {
        key: K,
        value: V,
        size: Z,
    }

    impl<K, V, Z> Strategy for BTreeMapStrategy<K, V, Z>
    where
        K: Strategy,
        K::Value: Ord + Debug,
        V: Strategy,
        Z: SizeRange,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Per-test RNG, seeded deterministically from the test name (and
    /// optionally `PROPTEST_SEED`) so failures reproduce.
    pub struct TestRng(StdRng);

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            let mut seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5EED_1E57_u64);
            for b in name.bytes() {
                seed = seed
                    .wrapping_mul(0x100_0000_01B3)
                    .wrapping_add(u64::from(b));
            }
            TestRng(StdRng::seed_from_u64(seed))
        }

        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.0
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Weighted / unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fails the current case (an `Err` return) unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            ));
        }
    }};
}

/// Declares property tests. Each generated `#[test]` runs `cases` random
/// inputs; a failing case panics with its inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr) $(#[test] fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let rendered = {
                        let mut s = ::std::string::String::new();
                        $(s.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));)*
                        s
                    };
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:\n{}",
                            case + 1, config.cases, msg, rendered
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_unions(v in prop_oneof![2 => 0..10u8, 1 => 200..=255u8], s in ".{0,8}") {
            prop_assert!(!(10..200).contains(&v), "v = {}", v);
            prop_assert!(s.chars().count() <= 8);
        }

        #[test]
        fn collections(items in crate::collection::vec((any::<u8>(), Just(7u8)), 0..20)) {
            prop_assert!(items.len() < 20);
            for (_, seven) in &items {
                prop_assert_eq!(*seven, 7u8);
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        use crate::strategy::{any, Strategy};
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let strat = crate::collection::vec(any::<u64>(), 0..10);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
