//! Offline stand-in for the `criterion` crate: the subset used by this
//! workspace (`Criterion`, benchmark groups, `iter` / `iter_batched`,
//! `criterion_group!` / `criterion_main!`).
//!
//! Measurement is deliberately simple: per benchmark, run warm-up for the
//! configured time, then `sample_size` samples and report mean/min/max
//! wall-clock time per iteration. No statistics beyond that, no HTML
//! reports, no baseline comparison.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; the stand-in runs one routine call
/// per setup either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// In test mode (`cargo test` passes `--test`) each benchmark runs once.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let cfg = self.clone();
        run_one(&cfg, name, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let cfg = self.criterion.clone();
        run_one(&cfg, &full, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one(cfg: &Criterion, name: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: if cfg.test_mode {
            1
        } else {
            cfg.sample_size.max(1)
        },
        warm_up: if cfg.test_mode {
            Duration::ZERO
        } else {
            cfg.warm_up_time
        },
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    println!(
        "{name:<40} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Handed to benchmark closures to time the hot code.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up: Duration,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
        }
        self.samples = (0..self.sample_size)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(routine());
                t0.elapsed()
            })
            .collect();
    }

    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            std::hint::black_box(routine(setup()));
        }
        self.samples = (0..self.sample_size)
            .map(|_| {
                let input = setup();
                let t0 = Instant::now();
                std::hint::black_box(routine(input));
                t0.elapsed()
            })
            .collect();
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::ZERO)
            .measurement_time(Duration::ZERO);
        // `cargo bench -- --test` leaks `--test` into this harness's args;
        // these tests assert multi-sample behavior, so pin the mode.
        c.test_mode = false;
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls >= 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(4)
            .warm_up_time(Duration::ZERO);
        c.test_mode = false;
        let mut group = c.benchmark_group("g");
        let mut setups = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| (),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert!(setups >= 4);
    }
}
